package tsys

import (
	"strings"
	"testing"
	"testing/quick"

	"wcet/internal/cc/token"
)

func TestTruncateBits(t *testing.T) {
	cases := []struct {
		v      int64
		bits   int
		signed bool
		want   int64
	}{
		{200, 8, true, -56},
		{200, 8, false, 200},
		{256, 8, false, 0},
		{-1, 8, false, 255},
		{-1, 8, true, -1},
		{32768, 16, true, -32768},
		{65535, 16, false, 65535},
		{5, 3, false, 5},
		{5, 3, true, -3},
		{1, 1, false, 1},
		{1, 1, true, -1},
		{12345, 0, true, 12345},  // width 0: pass-through
		{12345, 64, true, 12345}, // full width: pass-through
	}
	for _, c := range cases {
		if got := TruncateBits(c.v, c.bits, c.signed); got != c.want {
			t.Errorf("TruncateBits(%d, %d, %v) = %d, want %d", c.v, c.bits, c.signed, got, c.want)
		}
	}
}

func TestQuickTruncateIdempotent(t *testing.T) {
	f := func(v int32, bits uint8, signed bool) bool {
		b := int(bits%63) + 1
		once := TruncateBits(int64(v), b, signed)
		twice := TruncateBits(once, b, signed)
		return once == twice
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func buildExprModel() (*Model, VarID, VarID) {
	m := &Model{Name: "t"}
	x := m.NewVar("x", 16, true)
	y := m.NewVar("y", 16, true)
	return m, x.ID, y.ID
}

func TestEvalOperators(t *testing.T) {
	m, x, y := buildExprModel()
	vals := []int64{7, -3}
	rx, ry := &Ref{Var: x}, &Ref{Var: y}
	cases := []struct {
		e    Expr
		want int64
	}{
		{&Bin{Op: token.PLUS, X: rx, Y: ry}, 4},
		{&Bin{Op: token.MINUS, X: rx, Y: ry}, 10},
		{&Bin{Op: token.STAR, X: rx, Y: ry}, -21},
		{&Bin{Op: token.SLASH, X: rx, Y: &Const{Val: 2}}, 3},
		{&Bin{Op: token.PERCENT, X: rx, Y: &Const{Val: 4}}, 3},
		{&Bin{Op: token.LT, X: rx, Y: ry}, 0},
		{&Bin{Op: token.GE, X: rx, Y: ry}, 1},
		{&Bin{Op: token.EQ, X: rx, Y: rx}, 1},
		{&Bin{Op: token.LAND, X: rx, Y: ry}, 1},
		{&Bin{Op: token.LAND, X: &Const{Val: 0}, Y: ry}, 0},
		{&Bin{Op: token.LOR, X: &Const{Val: 0}, Y: &Const{Val: 0}}, 0},
		{&Un{Op: token.MINUS, X: rx}, -7},
		{&Un{Op: token.BANG, X: &Const{Val: 0}}, 1},
		{&Un{Op: token.TILDE, X: &Const{Val: 0}}, -1},
		{&CondE{C: rx, T: &Const{Val: 1}, F: &Const{Val: 2}}, 1},
		{&CondE{C: &Const{Val: 0}, T: &Const{Val: 1}, F: &Const{Val: 2}}, 2},
		{&CastE{Bits: 8, Signed: true, X: &Const{Val: 200}}, -56},
	}
	for i, c := range cases {
		got, err := Eval(m, c.e, vals)
		if err != nil {
			t.Errorf("case %d: %v", i, err)
			continue
		}
		if got != c.want {
			t.Errorf("case %d: Eval = %d, want %d (%s)", i, got, c.want, ExprString(m, c.e))
		}
	}
}

func TestEvalShortCircuitSkipsFaults(t *testing.T) {
	m, x, _ := buildExprModel()
	vals := []int64{0, 0}
	div := &Bin{Op: token.SLASH, X: &Const{Val: 1}, Y: &Ref{Var: x}}
	// x == 0, so 1/x faults — but && short-circuits first.
	e := &Bin{Op: token.LAND, X: &Ref{Var: x}, Y: div}
	got, err := Eval(m, e, vals)
	if err != nil || got != 0 {
		t.Errorf("short-circuit failed: %v %v", got, err)
	}
	if _, err := Eval(m, div, vals); err == nil {
		t.Error("division by zero must fault when evaluated")
	}
}

func TestSubstAndReadVars(t *testing.T) {
	m, x, y := buildExprModel()
	e := &Bin{Op: token.PLUS, X: &Ref{Var: x}, Y: &Bin{Op: token.STAR, X: &Ref{Var: y}, Y: &Ref{Var: x}}}
	reads := map[VarID]bool{}
	ReadVars(e, reads)
	if !reads[x] || !reads[y] || len(reads) != 2 {
		t.Errorf("reads = %v", reads)
	}
	repl := &Const{Val: 5}
	sub := Subst(e, x, repl)
	reads2 := map[VarID]bool{}
	ReadVars(sub, reads2)
	if reads2[x] {
		t.Error("substitution left a read of x")
	}
	got, err := Eval(m, sub, []int64{0, 3})
	if err != nil || got != 5+3*5 {
		t.Errorf("substituted eval = %d (%v), want 20", got, err)
	}
	// Original untouched.
	if r := map[VarID]bool{}; true {
		ReadVars(e, r)
		if !r[x] {
			t.Error("Subst mutated the original expression")
		}
	}
}

func TestSize(t *testing.T) {
	_, x, y := buildExprModel()
	e := &Bin{Op: token.PLUS, X: &Ref{Var: x}, Y: &Bin{Op: token.STAR, X: &Ref{Var: y}, Y: &Const{Val: 2}}}
	if got := Size(e); got != 5 {
		t.Errorf("Size = %d, want 5", got)
	}
}

func TestStateBitsAndLocBits(t *testing.T) {
	m := &Model{Name: "t"}
	m.NewVar("a", 16, true)
	m.NewVar("b", 1, false)
	for i := 0; i < 5; i++ {
		m.NewLoc()
	}
	if got := m.LocBits(); got != 3 {
		t.Errorf("LocBits(5) = %d, want 3", got)
	}
	if got := m.StateBits(); got != 16+1+3 {
		t.Errorf("StateBits = %d, want 20", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	m := &Model{Name: "t"}
	v := m.NewVar("a", 16, true)
	l0, l1 := m.NewLoc(), m.NewLoc()
	m.Init = l0
	m.AddEdge(&Edge{From: l0, To: l1, Assigns: []Assign{{Var: v.ID, RHS: &Const{Val: 1}}}})
	c := m.Clone()
	c.Vars[0].Bits = 4
	c.Edges[0].Assigns[0] = Assign{Var: v.ID, RHS: &Const{Val: 9}}
	if m.Vars[0].Bits != 16 {
		t.Error("clone shares Var structs")
	}
	if m.Edges[0].Assigns[0].RHS.(*Const).Val != 1 {
		t.Error("clone shares Assign slices")
	}
}

func TestModelString(t *testing.T) {
	m := &Model{Name: "demo"}
	v := m.NewVar("x", 8, true)
	v.Input = true
	l0, l1 := m.NewLoc(), m.NewLoc()
	m.Init, m.Trap = l0, l1
	m.AddEdge(&Edge{From: l0, To: l1,
		Guard: &Bin{Op: token.GT, X: &Ref{Var: v.ID}, Y: &Const{Val: 3}}})
	s := m.String()
	for _, want := range []string{"MODULE demo", "VAR x", "INPUT", "L0 -> L1", "(x > 3)"} {
		if !strings.Contains(s, want) {
			t.Errorf("model string missing %q:\n%s", want, s)
		}
	}
}
