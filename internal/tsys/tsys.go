// Package tsys defines the transition-system intermediate representation
// that stands in for the SAL language in this reproduction: typed state
// variables, control locations, and guarded parallel-assignment edges.
//
// The C-to-model translator (internal/c2m) produces one Model per analysed
// function; the optimisation passes (internal/opt) rewrite Models; the
// model checker (internal/mc) explores them symbolically or explicitly.
package tsys

import (
	"fmt"
	"strings"

	"wcet/internal/cc/token"
)

// VarID indexes a state variable.
type VarID int

// Loc is a control location (program counter value).
type Loc int

// InitKind describes a variable's initial-state constraint.
type InitKind int

// Initial-state kinds.
const (
	// InitFree leaves the initial value unconstrained — the model checker
	// may choose any representable value (inputs, uninitialised locals).
	InitFree InitKind = iota
	// InitConst pins the initial value.
	InitConst
)

// Var is one state variable.
type Var struct {
	ID     VarID
	Name   string
	Bits   int
	Signed bool
	Init   InitKind
	// InitVal is the pinned initial value for InitConst.
	InitVal int64
	// Input marks model inputs: they always stay InitFree and are the
	// values reported as test data.
	Input bool
	// Lo and Hi bound the value range when range analysis has run
	// (Bits is then the width of this range).
	Lo, Hi int64
	// HasRange reports whether Lo/Hi are meaningful.
	HasRange bool
}

// Assign sets Var to the value of RHS (evaluated in the pre-state).
type Assign struct {
	Var VarID
	RHS Expr
}

// Edge is a guarded transition: enabled at From when Guard holds; performs
// all assignments simultaneously (RHS read the pre-state) and moves to To.
type Edge struct {
	From, To Loc
	// Guard is nil for an always-enabled edge.
	Guard Expr
	// Assigns execute in parallel.
	Assigns []Assign
	// Chain groups edges lowered from the same basic block; the statement
	// concatenation optimisation only merges within a chain.
	Chain int
}

// Model is a complete transition system.
type Model struct {
	Name  string
	Vars  []*Var
	NLocs int
	Init  Loc
	Edges []*Edge
	// Trap is the target location of a reachability query (NoLoc if unset).
	Trap Loc
}

// NoLoc marks an absent location.
const NoLoc Loc = -1

// NewVar appends a variable and returns it.
func (m *Model) NewVar(name string, bits int, signed bool) *Var {
	v := &Var{ID: VarID(len(m.Vars)), Name: name, Bits: bits, Signed: signed}
	m.Vars = append(m.Vars, v)
	return v
}

// NewLoc allocates a fresh location.
func (m *Model) NewLoc() Loc {
	m.NLocs++
	return Loc(m.NLocs - 1)
}

// AddEdge appends an edge.
func (m *Model) AddEdge(e *Edge) { m.Edges = append(m.Edges, e) }

// Var returns the variable with the given id.
func (m *Model) Var(id VarID) *Var { return m.Vars[id] }

// StateBits sums the variable widths plus the location encoding — the
// paper's "number of bits required to encode the state vector".
func (m *Model) StateBits() int {
	bits := locBits(m.NLocs)
	for _, v := range m.Vars {
		bits += v.Bits
	}
	return bits
}

func locBits(n int) int {
	bits := 1
	for (1 << uint(bits)) < n {
		bits++
	}
	return bits
}

// LocBits reports the location-encoding width.
func (m *Model) LocBits() int { return locBits(m.NLocs) }

// OutEdges lists the edges leaving each location.
func (m *Model) OutEdges() map[Loc][]*Edge {
	out := map[Loc][]*Edge{}
	for _, e := range m.Edges {
		out[e.From] = append(out[e.From], e)
	}
	return out
}

// Clone deep-copies the model (expressions are immutable and shared).
func (m *Model) Clone() *Model {
	out := &Model{Name: m.Name, NLocs: m.NLocs, Init: m.Init, Trap: m.Trap}
	out.Vars = make([]*Var, len(m.Vars))
	for i, v := range m.Vars {
		c := *v
		out.Vars[i] = &c
	}
	out.Edges = make([]*Edge, len(m.Edges))
	for i, e := range m.Edges {
		c := *e
		c.Assigns = append([]Assign(nil), e.Assigns...)
		out.Edges[i] = &c
	}
	return out
}

// String renders the model in a SAL-flavoured text form for inspection.
func (m *Model) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "MODULE %s\n", m.Name)
	fmt.Fprintf(&b, "  locations: %d (init %d, trap %d), state bits: %d\n",
		m.NLocs, m.Init, m.Trap, m.StateBits())
	for _, v := range m.Vars {
		init := "free"
		if v.Init == InitConst {
			init = fmt.Sprintf("= %d", v.InitVal)
		}
		kind := ""
		if v.Input {
			kind = " INPUT"
		}
		fmt.Fprintf(&b, "  VAR %s: bits=%d signed=%v init %s%s\n", v.Name, v.Bits, v.Signed, init, kind)
	}
	for _, e := range m.Edges {
		fmt.Fprintf(&b, "  L%d -> L%d", e.From, e.To)
		if e.Guard != nil {
			fmt.Fprintf(&b, " [%s]", ExprString(m, e.Guard))
		}
		for _, a := range e.Assigns {
			fmt.Fprintf(&b, " %s' = %s;", m.Vars[a.Var].Name, ExprString(m, a.RHS))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Expressions

// Expr is the model expression IR. Expressions are pure; side effects exist
// only as edge assignments.
type Expr interface {
	exprNode()
}

// Const is an integer literal.
type Const struct {
	Val int64
}

// Ref reads a variable.
type Ref struct {
	Var VarID
}

// Un is a unary operation (-, ~, !).
type Un struct {
	Op token.Kind
	X  Expr
}

// Bin is a binary operation (arithmetic, bitwise, relational, logical).
type Bin struct {
	Op   token.Kind
	X, Y Expr
}

// CondE is the ternary select c ? t : f.
type CondE struct {
	C, T, F Expr
}

// CastE truncates/extends X to the given width.
type CastE struct {
	Bits   int
	Signed bool
	X      Expr
}

func (*Const) exprNode() {}
func (*Ref) exprNode()   {}
func (*Un) exprNode()    {}
func (*Bin) exprNode()   {}
func (*CondE) exprNode() {}
func (*CastE) exprNode() {}

// ExprString renders an expression.
func ExprString(m *Model, e Expr) string {
	switch x := e.(type) {
	case *Const:
		return fmt.Sprintf("%d", x.Val)
	case *Ref:
		return m.Vars[x.Var].Name
	case *Un:
		return x.Op.String() + "(" + ExprString(m, x.X) + ")"
	case *Bin:
		return "(" + ExprString(m, x.X) + " " + x.Op.String() + " " + ExprString(m, x.Y) + ")"
	case *CondE:
		return "(" + ExprString(m, x.C) + " ? " + ExprString(m, x.T) + " : " + ExprString(m, x.F) + ")"
	case *CastE:
		return fmt.Sprintf("(bv%d)%s", x.Bits, ExprString(m, x.X))
	}
	return "?"
}

// ReadVars collects the variables read by e into set.
func ReadVars(e Expr, set map[VarID]bool) {
	switch x := e.(type) {
	case nil:
	case *Const:
	case *Ref:
		set[x.Var] = true
	case *Un:
		ReadVars(x.X, set)
	case *Bin:
		ReadVars(x.X, set)
		ReadVars(x.Y, set)
	case *CondE:
		ReadVars(x.C, set)
		ReadVars(x.T, set)
		ReadVars(x.F, set)
	case *CastE:
		ReadVars(x.X, set)
	}
}

// Subst returns e with every read of v replaced by repl.
func Subst(e Expr, v VarID, repl Expr) Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *Const:
		return x
	case *Ref:
		if x.Var == v {
			return repl
		}
		return x
	case *Un:
		return &Un{Op: x.Op, X: Subst(x.X, v, repl)}
	case *Bin:
		return &Bin{Op: x.Op, X: Subst(x.X, v, repl), Y: Subst(x.Y, v, repl)}
	case *CondE:
		return &CondE{C: Subst(x.C, v, repl), T: Subst(x.T, v, repl), F: Subst(x.F, v, repl)}
	case *CastE:
		return &CastE{Bits: x.Bits, Signed: x.Signed, X: Subst(x.X, v, repl)}
	}
	return e
}

// Size counts expression nodes (used to bound substitution growth).
func Size(e Expr) int {
	switch x := e.(type) {
	case nil:
		return 0
	case *Const, *Ref:
		return 1
	case *Un:
		return 1 + Size(x.X)
	case *Bin:
		return 1 + Size(x.X) + Size(x.Y)
	case *CondE:
		return 1 + Size(x.C) + Size(x.T) + Size(x.F)
	case *CastE:
		return 1 + Size(x.X)
	}
	return 1
}

// ---------------------------------------------------------------------------
// Concrete evaluation (used by the explicit-state engine and tests)

// EvalErr reports a fault during concrete evaluation.
type EvalErr struct{ Msg string }

func (e *EvalErr) Error() string { return "tsys: " + e.Msg }

// Eval computes e under the concrete state vals (indexed by VarID). Values
// are stored truncated to their variable's width; intermediate arithmetic is
// exact in int64, with relational results 0/1.
func Eval(m *Model, e Expr, vals []int64) (int64, error) {
	switch x := e.(type) {
	case *Const:
		return x.Val, nil
	case *Ref:
		return vals[x.Var], nil
	case *Un:
		v, err := Eval(m, x.X, vals)
		if err != nil {
			return 0, err
		}
		switch x.Op {
		case token.MINUS:
			return -v, nil
		case token.TILDE:
			return ^v, nil
		case token.BANG:
			if v == 0 {
				return 1, nil
			}
			return 0, nil
		case token.PLUS:
			return v, nil
		}
		return 0, &EvalErr{Msg: "bad unary " + x.Op.String()}
	case *Bin:
		a, err := Eval(m, x.X, vals)
		if err != nil {
			return 0, err
		}
		// Short-circuit forms keep C semantics.
		if x.Op == token.LAND {
			if a == 0 {
				return 0, nil
			}
			b, err := Eval(m, x.Y, vals)
			if err != nil {
				return 0, err
			}
			return boolInt(b != 0), nil
		}
		if x.Op == token.LOR {
			if a != 0 {
				return 1, nil
			}
			b, err := Eval(m, x.Y, vals)
			if err != nil {
				return 0, err
			}
			return boolInt(b != 0), nil
		}
		b, err := Eval(m, x.Y, vals)
		if err != nil {
			return 0, err
		}
		switch x.Op {
		case token.PLUS:
			return a + b, nil
		case token.MINUS:
			return a - b, nil
		case token.STAR:
			return a * b, nil
		case token.SLASH:
			if b == 0 {
				return 0, &EvalErr{Msg: "division by zero"}
			}
			return a / b, nil
		case token.PERCENT:
			if b == 0 {
				return 0, &EvalErr{Msg: "modulo by zero"}
			}
			return a % b, nil
		case token.SHL:
			return a << uint(b&63), nil
		case token.SHR:
			return a >> uint(b&63), nil
		case token.AMP:
			return a & b, nil
		case token.PIPE:
			return a | b, nil
		case token.CARET:
			return a ^ b, nil
		case token.LT:
			return boolInt(a < b), nil
		case token.GT:
			return boolInt(a > b), nil
		case token.LE:
			return boolInt(a <= b), nil
		case token.GE:
			return boolInt(a >= b), nil
		case token.EQ:
			return boolInt(a == b), nil
		case token.NE:
			return boolInt(a != b), nil
		}
		return 0, &EvalErr{Msg: "bad binary " + x.Op.String()}
	case *CondE:
		c, err := Eval(m, x.C, vals)
		if err != nil {
			return 0, err
		}
		if c != 0 {
			return Eval(m, x.T, vals)
		}
		return Eval(m, x.F, vals)
	case *CastE:
		v, err := Eval(m, x.X, vals)
		if err != nil {
			return 0, err
		}
		return TruncateBits(v, x.Bits, x.Signed), nil
	}
	return 0, &EvalErr{Msg: fmt.Sprintf("bad expression %T", e)}
}

func boolInt(c bool) int64 {
	if c {
		return 1
	}
	return 0
}

// ---------------------------------------------------------------------------
// Structural fingerprint

// Fingerprint hashes the model's checkable structure — variables (width,
// signedness, initialisation, ranges), locations, and edges with their full
// guard and assignment expressions — into a 64-bit FNV-1a digest. Two models
// with equal fingerprints pose the same symbolic query, so the fingerprint
// keys caches of query-derived artifacts such as learned BDD variable
// orders (mc.OrderBook). Names are excluded: they do not influence the
// encoding.
func (m *Model) Fingerprint() uint64 {
	h := fnvOffset
	h = fnvInt(h, int64(m.NLocs))
	h = fnvInt(h, int64(m.Init))
	h = fnvInt(h, int64(m.Trap))
	h = fnvInt(h, int64(len(m.Vars)))
	for _, v := range m.Vars {
		h = fnvInt(h, int64(v.Bits))
		h = fnvBool(h, v.Signed)
		h = fnvInt(h, int64(v.Init))
		h = fnvInt(h, v.InitVal)
		h = fnvBool(h, v.Input)
		h = fnvBool(h, v.HasRange)
		if v.HasRange {
			h = fnvInt(h, v.Lo)
			h = fnvInt(h, v.Hi)
		}
	}
	h = fnvInt(h, int64(len(m.Edges)))
	for _, e := range m.Edges {
		h = fnvInt(h, int64(e.From))
		h = fnvInt(h, int64(e.To))
		h = fnvExpr(h, e.Guard)
		h = fnvInt(h, int64(len(e.Assigns)))
		for _, a := range e.Assigns {
			h = fnvInt(h, int64(a.Var))
			h = fnvExpr(h, a.RHS)
		}
	}
	return h
}

const (
	fnvOffset = uint64(14695981039346656037)
	fnvPrime  = uint64(1099511628211)
)

func fnvByte(h uint64, b byte) uint64 { return (h ^ uint64(b)) * fnvPrime }

func fnvInt(h uint64, v int64) uint64 {
	u := uint64(v)
	for i := 0; i < 8; i++ {
		h = fnvByte(h, byte(u>>(8*i)))
	}
	return h
}

func fnvBool(h uint64, b bool) uint64 {
	if b {
		return fnvByte(h, 1)
	}
	return fnvByte(h, 0)
}

// fnvExpr folds an expression tree into the digest with per-kind tags, so
// structurally different trees cannot collide by flattening alike.
func fnvExpr(h uint64, e Expr) uint64 {
	switch x := e.(type) {
	case nil:
		return fnvByte(h, 0)
	case *Const:
		return fnvInt(fnvByte(h, 1), x.Val)
	case *Ref:
		return fnvInt(fnvByte(h, 2), int64(x.Var))
	case *Un:
		return fnvExpr(fnvInt(fnvByte(h, 3), int64(x.Op)), x.X)
	case *Bin:
		h = fnvInt(fnvByte(h, 4), int64(x.Op))
		return fnvExpr(fnvExpr(h, x.X), x.Y)
	case *CondE:
		return fnvExpr(fnvExpr(fnvExpr(fnvByte(h, 5), x.C), x.T), x.F)
	case *CastE:
		h = fnvBool(fnvInt(fnvByte(h, 6), int64(x.Bits)), x.Signed)
		return fnvExpr(h, x.X)
	}
	return fnvByte(h, 255)
}

// TruncateBits wraps v to a two's-complement width.
func TruncateBits(v int64, bits int, signed bool) int64 {
	if bits <= 0 || bits >= 64 {
		return v
	}
	mask := (int64(1) << uint(bits)) - 1
	v &= mask
	if signed && v&(int64(1)<<uint(bits-1)) != 0 {
		v -= int64(1) << uint(bits)
	}
	return v
}
