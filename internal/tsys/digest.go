package tsys

import (
	"encoding/binary"
	"io"
)

// WriteDigest streams a versioned canonical encoding of the model's
// checkable structure into w — the same fields Fingerprint folds into its
// 64-bit FNV digest (variables with width, signedness, initialisation and
// ranges; locations; edges with full guard and assignment expressions),
// but as an unbounded byte stream suitable for a cryptographic hash.
// Fingerprint keys in-process caches where a 64-bit digest is plenty
// (mc.OrderBook); persistent stores shared across program edits key on a
// 256-bit hash of this encoding instead, where an accidental collision
// would silently replay a wrong verdict. Names are excluded, like in
// Fingerprint: they do not influence the encoding.
//
// The encoding is length- and tag-disciplined (every list is preceded by
// its count, every expression node by its kind tag), so two different
// models cannot flatten to the same byte stream. The version tag makes a
// digest from an older encoding unreadable rather than wrong.
func (m *Model) WriteDigest(w io.Writer) {
	d := digestWriter{w: w}
	d.str("tsys-model-v1\x00")
	d.i64(int64(m.NLocs))
	d.i64(int64(m.Init))
	d.i64(int64(m.Trap))
	d.i64(int64(len(m.Vars)))
	for _, v := range m.Vars {
		d.i64(int64(v.Bits))
		d.bool(v.Signed)
		d.i64(int64(v.Init))
		d.i64(v.InitVal)
		d.bool(v.Input)
		d.bool(v.HasRange)
		if v.HasRange {
			d.i64(v.Lo)
			d.i64(v.Hi)
		}
	}
	d.i64(int64(len(m.Edges)))
	for _, e := range m.Edges {
		d.i64(int64(e.From))
		d.i64(int64(e.To))
		d.expr(e.Guard)
		d.i64(int64(len(e.Assigns)))
		for _, a := range e.Assigns {
			d.i64(int64(a.Var))
			d.expr(a.RHS)
		}
	}
}

// digestWriter serialises primitives into the digest stream. Writes to a
// hash never fail, so errors are ignored; a non-hash writer sees the same
// best-effort behaviour io.Writer wrappers usually get in digest code.
type digestWriter struct {
	w   io.Writer
	buf [8]byte
}

func (d *digestWriter) str(s string) { io.WriteString(d.w, s) }

func (d *digestWriter) i64(v int64) {
	binary.LittleEndian.PutUint64(d.buf[:], uint64(v))
	d.w.Write(d.buf[:])
}

func (d *digestWriter) bool(b bool) {
	if b {
		d.w.Write([]byte{1})
	} else {
		d.w.Write([]byte{0})
	}
}

// expr mirrors fnvExpr's per-kind tags so the two digests agree on
// structure discrimination.
func (d *digestWriter) expr(e Expr) {
	switch x := e.(type) {
	case nil:
		d.w.Write([]byte{0})
	case *Const:
		d.w.Write([]byte{1})
		d.i64(x.Val)
	case *Ref:
		d.w.Write([]byte{2})
		d.i64(int64(x.Var))
	case *Un:
		d.w.Write([]byte{3})
		d.i64(int64(x.Op))
		d.expr(x.X)
	case *Bin:
		d.w.Write([]byte{4})
		d.i64(int64(x.Op))
		d.expr(x.X)
		d.expr(x.Y)
	case *CondE:
		d.w.Write([]byte{5})
		d.expr(x.C)
		d.expr(x.T)
		d.expr(x.F)
	case *CastE:
		d.w.Write([]byte{6})
		d.i64(int64(x.Bits))
		d.bool(x.Signed)
		d.expr(x.X)
	default:
		d.w.Write([]byte{255})
	}
}
