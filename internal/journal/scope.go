// Scope restricts a journaled pipeline run to an assigned subset of unit
// keys. A distributed worker owns only the keys its lease granted: stages
// consult the context's Scope before computing a unit, skip unowned ones
// entirely (they belong to sibling workers), and the Scope reports when
// every owned unit has a durable journal record — the worker's cue to stop
// instead of running the pipeline to the end.

package journal

import (
	"context"
	"sort"
	"sync"
)

// Scope is the set of unit keys one worker owns, with drain tracking. A
// nil *Scope means "unscoped": every key is owned and the scope is never
// drained early — exactly the single-process behaviour.
type Scope struct {
	// owned is immutable after NewScope, so Owns is lock-free.
	owned map[string]bool

	mu        sync.Mutex
	completed map[string]bool
	remaining int
	onDrained func()
}

// NewScope builds a scope owning exactly keys (duplicates collapse).
func NewScope(keys []string) *Scope {
	s := &Scope{owned: map[string]bool{}, completed: map[string]bool{}}
	for _, k := range keys {
		s.owned[k] = true
	}
	s.remaining = len(s.owned)
	return s
}

// Owns reports whether key is this worker's to compute. Nil-safe: an
// unscoped run owns everything.
func (s *Scope) Owns(key string) bool {
	if s == nil {
		return true
	}
	return s.owned[key]
}

// Complete marks key's unit durably journaled. Unowned keys and repeats
// are ignored. When the last owned unit completes, the OnDrained callback
// (if any) fires once, outside the scope lock.
func (s *Scope) Complete(key string) {
	if s == nil || !s.owned[key] {
		return
	}
	s.mu.Lock()
	if s.completed[key] {
		s.mu.Unlock()
		return
	}
	s.completed[key] = true
	s.remaining--
	fire := s.remaining == 0
	fn := s.onDrained
	s.mu.Unlock()
	if fire && fn != nil {
		fn()
	}
}

// Drained reports whether every owned unit has completed. Nil-safe: an
// unscoped run is never drained (the pipeline runs to its natural end).
func (s *Scope) Drained() bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.remaining == 0
}

// Remaining returns the owned keys not yet completed, sorted.
func (s *Scope) Remaining() []string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var keys []string
	for k := range s.owned {
		if !s.completed[k] {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// OnDrained registers fn to run once when the last owned unit completes;
// if the scope is already drained it fires immediately. Workers use it to
// cancel their pipeline context the moment their lease is fulfilled.
func (s *Scope) OnDrained(fn func()) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.remaining == 0 {
		s.mu.Unlock()
		fn()
		return
	}
	s.onDrained = fn
	s.mu.Unlock()
}

type scopeCtxKey struct{}

// WithScope attaches a worker scope to the context; nil detaches.
func WithScope(ctx context.Context, s *Scope) context.Context {
	return context.WithValue(ctx, scopeCtxKey{}, s)
}

// ScopeFrom retrieves the context's scope, or nil (unscoped).
func ScopeFrom(ctx context.Context) *Scope {
	s, _ := ctx.Value(scopeCtxKey{}).(*Scope)
	return s
}
