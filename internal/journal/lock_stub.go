//go:build !unix

package journal

// lockFile is a no-op where flock is unavailable: single-process safety
// still holds (the in-process mutex), multi-process exclusion does not.
func lockFile(f interface{ Fd() uintptr }) error { return nil }
