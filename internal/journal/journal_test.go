package journal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func openT(t *testing.T, path string) *Journal {
	t.Helper()
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	return j
}

func TestRoundTripAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	j := openT(t, path)
	if n, err := j.Bind("fp-1"); err != nil || n != 0 {
		t.Fatalf("Bind on fresh journal = (%d, %v), want (0, nil)", n, err)
	}
	if err := j.Put("tg/a", []byte("verdict-a")); err != nil {
		t.Fatal(err)
	}
	if err := j.PutJSON("meas/campaign/0", map[string]int{"total": 42}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	r := openT(t, path)
	if n, err := r.Bind("fp-1"); err != nil || n != 2 {
		t.Fatalf("Bind on reopen = (%d, %v), want (2, nil)", n, err)
	}
	if v, ok := r.Get("tg/a"); !ok || string(v) != "verdict-a" {
		t.Errorf("Get(tg/a) = (%q, %v), want (verdict-a, true)", v, ok)
	}
	var m map[string]int
	if !r.GetJSON("meas/campaign/0", &m) || m["total"] != 42 {
		t.Errorf("GetJSON(meas/campaign/0) = (%v), want total=42", m)
	}
	if r.Hits() != 2 {
		t.Errorf("Hits = %d, want 2", r.Hits())
	}
}

// TestTornTailTruncated simulates a crash mid-append: every proper prefix
// of the file must reopen cleanly, keeping exactly the records whose
// frames are intact and truncating the rest.
func TestTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	j := openT(t, path)
	j.Bind("fp")
	j.Put("a", []byte("alpha"))
	j.Put("b", []byte("beta"))
	j.Close()
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for cut := 0; cut <= len(full); cut++ {
		p := filepath.Join(t.TempDir(), "torn.journal")
		if err := os.WriteFile(p, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		r, err := Open(p)
		if err != nil {
			t.Fatalf("cut=%d: Open: %v", cut, err)
		}
		// Whatever survived must be a prefix of the intact record sequence,
		// and appending must work from the truncated boundary.
		if _, ok := r.Get("b"); ok {
			if _, ok := r.Get("a"); !ok {
				t.Errorf("cut=%d: record b survived without record a", cut)
			}
		}
		if err := r.Put("c", []byte("gamma")); err != nil {
			t.Fatalf("cut=%d: append after truncation: %v", cut, err)
		}
		r.Close()
		rr := openT(t, p)
		if v, ok := rr.Get("c"); !ok || string(v) != "gamma" {
			t.Errorf("cut=%d: post-truncation append lost: (%q, %v)", cut, v, ok)
		}
		if st, _ := os.Stat(p); st.Size() < 8 && cut >= len(full) {
			t.Errorf("cut=%d: file unexpectedly empty", cut)
		}
	}
}

// TestCorruptedFrameDropsTail flips bytes inside a frame's payload and
// header: the CRC must reject the frame, and everything after it — intact
// or not — is discarded, because frame boundaries downstream of a corrupt
// length cannot be trusted.
func TestCorruptedFrameDropsTail(t *testing.T) {
	base := filepath.Join(t.TempDir(), "run.journal")
	j := openT(t, base)
	j.Put("a", []byte("alpha"))
	j.Put("b", []byte("beta"))
	j.Put("c", []byte("gamma"))
	j.Close()
	full, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}

	for flip := 0; flip < len(full); flip++ {
		p := filepath.Join(t.TempDir(), "flip.journal")
		mut := append([]byte(nil), full...)
		mut[flip] ^= 0xFF
		if err := os.WriteFile(p, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		r, err := Open(p)
		if err != nil {
			t.Fatalf("flip=%d: Open: %v", flip, err)
		}
		// The mutated journal must never serve a value that differs from
		// what was written: a record is either intact or absent.
		for key, want := range map[string]string{"a": "alpha", "b": "beta", "c": "gamma"} {
			if v, ok := r.Get(key); ok && string(v) != want {
				t.Errorf("flip=%d: Get(%s) = %q, corrupted value served", flip, key, v)
			}
		}
		r.Close()
	}
}

// TestDuplicatePutIdempotent: re-putting a journaled key must not grow the
// file, and replay must keep a single deterministic value.
func TestDuplicatePutIdempotent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	j := openT(t, path)
	j.Put("k", []byte("first"))
	size1, _ := os.Stat(path)
	j.Put("k", []byte("second"))
	size2, _ := os.Stat(path)
	if size1.Size() != size2.Size() {
		t.Errorf("duplicate Put grew the file: %d -> %d bytes", size1.Size(), size2.Size())
	}
	if v, _ := j.Get("k"); string(v) != "first" {
		t.Errorf("duplicate Put overwrote value: %q", v)
	}
	j.Close()

	// Even a journal holding literal duplicate frames (crash between the
	// in-memory check and a concurrent writer's append, or a hand-merged
	// file) replays first-record-wins.
	full, _ := os.ReadFile(path)
	dup := append(append([]byte(nil), full...), full...)
	p2 := filepath.Join(t.TempDir(), "dup.journal")
	os.WriteFile(p2, dup, 0o644)
	r := openT(t, p2)
	if v, ok := r.Get("k"); !ok || string(v) != "first" {
		t.Errorf("duplicate frames: Get(k) = (%q, %v), want (first, true)", v, ok)
	}
	if r.Len() != 1 {
		t.Errorf("duplicate frames: Len = %d, want 1", r.Len())
	}
}

// TestFingerprintMismatchForcesCleanRun: a journal written under one
// (program, options) identity must not leak records into a run with a
// different identity.
func TestFingerprintMismatchForcesCleanRun(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	j := openT(t, path)
	j.Bind("fp-old")
	j.Put("tg/a", []byte("stale"))
	j.Close()

	r := openT(t, path)
	n, err := r.Bind("fp-new")
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("Bind after fingerprint change = %d resumable records, want 0", n)
	}
	if _, ok := r.Get("tg/a"); ok {
		t.Error("stale record survived a fingerprint mismatch")
	}
	r.Put("tg/a", []byte("fresh"))
	r.Close()

	rr := openT(t, path)
	if n, err := rr.Bind("fp-new"); err != nil || n != 1 {
		t.Fatalf("rebind = (%d, %v), want (1, nil)", n, err)
	}
	if v, _ := rr.Get("tg/a"); string(v) != "fresh" {
		t.Errorf("Get after reset+rewrite = %q, want fresh", v)
	}
}

func TestNilJournalIsInert(t *testing.T) {
	var j *Journal
	if err := j.Put("k", []byte("v")); err != nil {
		t.Errorf("nil Put: %v", err)
	}
	if _, ok := j.Get("k"); ok {
		t.Error("nil Get returned a record")
	}
	if n, err := j.Bind("fp"); n != 0 || err != nil {
		t.Errorf("nil Bind = (%d, %v)", n, err)
	}
	if j.Len() != 0 || j.Hits() != 0 || j.Path() != "" {
		t.Error("nil accessors not inert")
	}
	if err := j.Close(); err != nil {
		t.Errorf("nil Close: %v", err)
	}
}

func TestAppendHookObservesProgress(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	j := openT(t, path)
	var seen []int
	j.SetAppendHook(func(_ string, n int) { seen = append(seen, n) })
	j.Put("a", nil)
	j.Put("b", nil)
	j.Put("a", nil) // duplicate: no append, no hook
	if !bytes.Equal([]byte{byte(len(seen))}, []byte{2}) || seen[0] != 1 || seen[1] != 2 {
		t.Errorf("hook saw %v, want [1 2]", seen)
	}
}

// TestReadFileFromStaleOffsetPlusTail pins the primitive the remote
// journal stream relies on: a reader that snapshotted the file at some
// frame boundary, unioned with a ReadFileFrom at that boundary after more
// appends, reconstructs exactly ReadFile's record set — no frame is lost
// or double-counted however the file grew in between.
func TestReadFileFromStaleOffsetPlusTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	j := openT(t, path)
	j.Bind("fp")
	j.Put("tg/a", []byte("alpha"))
	j.Put("tg/b", []byte("beta"))

	// The stale reader snapshots now and remembers its end offset.
	head, mid, err := ReadFileFrom(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(head) != 2 {
		t.Fatalf("head records = %d, want 2 (fingerprint excluded)", len(head))
	}

	// The writer moves on; the reader later resumes from its offset.
	j.Put("mc/c", []byte("gamma"))
	j.Put("meas/d", []byte("delta"))
	j.Close()

	tail, end, err := ReadFileFrom(path, mid)
	if err != nil {
		t.Fatal(err)
	}
	if len(tail) != 2 {
		t.Fatalf("tail records = %v, want exactly the 2 post-snapshot ones", tail)
	}
	if fi, _ := os.Stat(path); fi.Size() != end {
		t.Errorf("end = %d, want file size %d", end, fi.Size())
	}

	full, _, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	union := map[string][]byte{}
	for k, v := range head {
		union[k] = v
	}
	for k, v := range tail {
		if prev, dup := union[k]; dup && !bytes.Equal(prev, v) {
			t.Errorf("key %q appears in both halves with different values", k)
		}
		union[k] = v
	}
	if len(union) != len(full) {
		t.Fatalf("union has %d records, ReadFile has %d", len(union), len(full))
	}
	for k, v := range full {
		if !bytes.Equal(union[k], v) {
			t.Errorf("record %q: union %q, ReadFile %q", k, union[k], v)
		}
	}
}

// TestReadFileFromTornTail: a torn final frame ends the scan at the last
// intact boundary, and resuming from that boundary after the tail is
// completed re-delivers the record exactly once.
func TestReadFileFromTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	j := openT(t, path)
	j.Bind("fp")
	j.Put("a", []byte("alpha"))
	j.Close()
	intact, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Append a torn frame: the first half of a real frame for key "b".
	j2 := openT(t, path)
	j2.Put("b", []byte("beta"))
	j2.Close()
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	torn := full[:len(intact)+(len(full)-len(intact))/2]
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	recs, end, err := ReadFileFrom(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if end != int64(len(intact)) {
		t.Fatalf("end = %d, want last intact boundary %d", end, len(intact))
	}
	if _, ok := recs["b"]; ok {
		t.Error("torn frame for b must not be delivered")
	}

	// The tail is re-written whole (the stream re-sends the frame); the
	// resumed read picks up exactly b.
	if err := os.WriteFile(path, full, 0o644); err != nil {
		t.Fatal(err)
	}
	tail, end2, err := ReadFileFrom(path, end)
	if err != nil {
		t.Fatal(err)
	}
	if len(tail) != 1 || string(tail["b"]) != "beta" {
		t.Errorf("resumed tail = %v, want exactly b=beta", tail)
	}
	if end2 != int64(len(full)) {
		t.Errorf("end after resume = %d, want %d", end2, len(full))
	}
	if _, _, err := ReadFileFrom(path, int64(len(full))+1); err == nil {
		t.Error("offset beyond EOF must error")
	}
}

// TestNextFrameIncremental drives the streaming decoder over a byte stream
// delivered one byte at a time: every frame is recovered exactly once, a
// prefix never decodes, and corrupted bytes are rejected with an error.
func TestNextFrameIncremental(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	j := openT(t, path)
	j.Put("k1", []byte("v1"))
	j.Put("k2", []byte("value-two"))
	j.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	var buf []byte
	got := map[string]string{}
	for i := 0; i < len(data); i++ {
		buf = append(buf, data[i])
		for {
			key, val, n, err := NextFrame(buf)
			if err != nil {
				t.Fatalf("NextFrame on intact stream at byte %d: %v", i, err)
			}
			if n == 0 {
				break
			}
			got[key] = string(val)
			buf = buf[n:]
		}
	}
	if len(buf) != 0 {
		t.Errorf("%d undecoded bytes left", len(buf))
	}
	if got["k1"] != "v1" || got["k2"] != "value-two" {
		t.Errorf("decoded %v", got)
	}

	// A flipped payload byte is a CRC mismatch, not a silent record.
	bad := append([]byte(nil), data...)
	bad[9] ^= 0xff
	if _, _, _, err := NextFrame(bad); err == nil {
		t.Error("corrupted frame decoded without error")
	}
	// An implausible length field is corruption too.
	huge := []byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0, 1, 2, 3}
	if _, _, _, err := NextFrame(huge); err == nil {
		t.Error("implausible length decoded without error")
	}
}
