package journal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func openT(t *testing.T, path string) *Journal {
	t.Helper()
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	return j
}

func TestRoundTripAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	j := openT(t, path)
	if n, err := j.Bind("fp-1"); err != nil || n != 0 {
		t.Fatalf("Bind on fresh journal = (%d, %v), want (0, nil)", n, err)
	}
	if err := j.Put("tg/a", []byte("verdict-a")); err != nil {
		t.Fatal(err)
	}
	if err := j.PutJSON("meas/campaign/0", map[string]int{"total": 42}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	r := openT(t, path)
	if n, err := r.Bind("fp-1"); err != nil || n != 2 {
		t.Fatalf("Bind on reopen = (%d, %v), want (2, nil)", n, err)
	}
	if v, ok := r.Get("tg/a"); !ok || string(v) != "verdict-a" {
		t.Errorf("Get(tg/a) = (%q, %v), want (verdict-a, true)", v, ok)
	}
	var m map[string]int
	if !r.GetJSON("meas/campaign/0", &m) || m["total"] != 42 {
		t.Errorf("GetJSON(meas/campaign/0) = (%v), want total=42", m)
	}
	if r.Hits() != 2 {
		t.Errorf("Hits = %d, want 2", r.Hits())
	}
}

// TestTornTailTruncated simulates a crash mid-append: every proper prefix
// of the file must reopen cleanly, keeping exactly the records whose
// frames are intact and truncating the rest.
func TestTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	j := openT(t, path)
	j.Bind("fp")
	j.Put("a", []byte("alpha"))
	j.Put("b", []byte("beta"))
	j.Close()
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for cut := 0; cut <= len(full); cut++ {
		p := filepath.Join(t.TempDir(), "torn.journal")
		if err := os.WriteFile(p, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		r, err := Open(p)
		if err != nil {
			t.Fatalf("cut=%d: Open: %v", cut, err)
		}
		// Whatever survived must be a prefix of the intact record sequence,
		// and appending must work from the truncated boundary.
		if _, ok := r.Get("b"); ok {
			if _, ok := r.Get("a"); !ok {
				t.Errorf("cut=%d: record b survived without record a", cut)
			}
		}
		if err := r.Put("c", []byte("gamma")); err != nil {
			t.Fatalf("cut=%d: append after truncation: %v", cut, err)
		}
		r.Close()
		rr := openT(t, p)
		if v, ok := rr.Get("c"); !ok || string(v) != "gamma" {
			t.Errorf("cut=%d: post-truncation append lost: (%q, %v)", cut, v, ok)
		}
		if st, _ := os.Stat(p); st.Size() < 8 && cut >= len(full) {
			t.Errorf("cut=%d: file unexpectedly empty", cut)
		}
	}
}

// TestCorruptedFrameDropsTail flips bytes inside a frame's payload and
// header: the CRC must reject the frame, and everything after it — intact
// or not — is discarded, because frame boundaries downstream of a corrupt
// length cannot be trusted.
func TestCorruptedFrameDropsTail(t *testing.T) {
	base := filepath.Join(t.TempDir(), "run.journal")
	j := openT(t, base)
	j.Put("a", []byte("alpha"))
	j.Put("b", []byte("beta"))
	j.Put("c", []byte("gamma"))
	j.Close()
	full, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}

	for flip := 0; flip < len(full); flip++ {
		p := filepath.Join(t.TempDir(), "flip.journal")
		mut := append([]byte(nil), full...)
		mut[flip] ^= 0xFF
		if err := os.WriteFile(p, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		r, err := Open(p)
		if err != nil {
			t.Fatalf("flip=%d: Open: %v", flip, err)
		}
		// The mutated journal must never serve a value that differs from
		// what was written: a record is either intact or absent.
		for key, want := range map[string]string{"a": "alpha", "b": "beta", "c": "gamma"} {
			if v, ok := r.Get(key); ok && string(v) != want {
				t.Errorf("flip=%d: Get(%s) = %q, corrupted value served", flip, key, v)
			}
		}
		r.Close()
	}
}

// TestDuplicatePutIdempotent: re-putting a journaled key must not grow the
// file, and replay must keep a single deterministic value.
func TestDuplicatePutIdempotent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	j := openT(t, path)
	j.Put("k", []byte("first"))
	size1, _ := os.Stat(path)
	j.Put("k", []byte("second"))
	size2, _ := os.Stat(path)
	if size1.Size() != size2.Size() {
		t.Errorf("duplicate Put grew the file: %d -> %d bytes", size1.Size(), size2.Size())
	}
	if v, _ := j.Get("k"); string(v) != "first" {
		t.Errorf("duplicate Put overwrote value: %q", v)
	}
	j.Close()

	// Even a journal holding literal duplicate frames (crash between the
	// in-memory check and a concurrent writer's append, or a hand-merged
	// file) replays first-record-wins.
	full, _ := os.ReadFile(path)
	dup := append(append([]byte(nil), full...), full...)
	p2 := filepath.Join(t.TempDir(), "dup.journal")
	os.WriteFile(p2, dup, 0o644)
	r := openT(t, p2)
	if v, ok := r.Get("k"); !ok || string(v) != "first" {
		t.Errorf("duplicate frames: Get(k) = (%q, %v), want (first, true)", v, ok)
	}
	if r.Len() != 1 {
		t.Errorf("duplicate frames: Len = %d, want 1", r.Len())
	}
}

// TestFingerprintMismatchForcesCleanRun: a journal written under one
// (program, options) identity must not leak records into a run with a
// different identity.
func TestFingerprintMismatchForcesCleanRun(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	j := openT(t, path)
	j.Bind("fp-old")
	j.Put("tg/a", []byte("stale"))
	j.Close()

	r := openT(t, path)
	n, err := r.Bind("fp-new")
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("Bind after fingerprint change = %d resumable records, want 0", n)
	}
	if _, ok := r.Get("tg/a"); ok {
		t.Error("stale record survived a fingerprint mismatch")
	}
	r.Put("tg/a", []byte("fresh"))
	r.Close()

	rr := openT(t, path)
	if n, err := rr.Bind("fp-new"); err != nil || n != 1 {
		t.Fatalf("rebind = (%d, %v), want (1, nil)", n, err)
	}
	if v, _ := rr.Get("tg/a"); string(v) != "fresh" {
		t.Errorf("Get after reset+rewrite = %q, want fresh", v)
	}
}

func TestNilJournalIsInert(t *testing.T) {
	var j *Journal
	if err := j.Put("k", []byte("v")); err != nil {
		t.Errorf("nil Put: %v", err)
	}
	if _, ok := j.Get("k"); ok {
		t.Error("nil Get returned a record")
	}
	if n, err := j.Bind("fp"); n != 0 || err != nil {
		t.Errorf("nil Bind = (%d, %v)", n, err)
	}
	if j.Len() != 0 || j.Hits() != 0 || j.Path() != "" {
		t.Error("nil accessors not inert")
	}
	if err := j.Close(); err != nil {
		t.Errorf("nil Close: %v", err)
	}
}

func TestAppendHookObservesProgress(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	j := openT(t, path)
	var seen []int
	j.SetAppendHook(func(_ string, n int) { seen = append(seen, n) })
	j.Put("a", nil)
	j.Put("b", nil)
	j.Put("a", nil) // duplicate: no append, no hook
	if !bytes.Equal([]byte{byte(len(seen))}, []byte{2}) || seen[0] != 1 || seen[1] != 2 {
		t.Errorf("hook saw %v, want [1 2]", seen)
	}
}
