//go:build unix

package journal

import (
	"errors"
	"syscall"
)

// lockFile takes a non-blocking exclusive advisory lock on f for the life
// of its open file description. flock conflicts are reported as ErrLocked
// — including a second Open of the same path inside one process, since
// each Open creates a fresh description.
func lockFile(f interface{ Fd() uintptr }) error {
	for {
		err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
		if err == nil {
			return nil
		}
		if errors.Is(err, syscall.EINTR) {
			continue
		}
		if errors.Is(err, syscall.EWOULDBLOCK) {
			return ErrLocked
		}
		return err
	}
}
