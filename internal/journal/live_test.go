package journal

import (
	"fmt"
	"path/filepath"
	"sync/atomic"
	"testing"
)

// TestReadFileConcurrentWithAppends is the live-status read-path
// guarantee: ReadFile snapshots taken while a writer is appending are
// always clean frame-aligned prefixes of the write sequence — every
// record that parses is complete and correctly keyed, the fingerprint is
// intact, and the record count only ever grows between snapshots. This is
// exactly what /status relies on when it polls a journal whose flock the
// run still holds.
func TestReadFileConcurrentWithAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	j := openT(t, path)
	defer j.Close()
	if _, err := j.Bind("fp-live"); err != nil {
		t.Fatal(err)
	}

	const total = 400
	var written atomic.Int64
	done := make(chan error, 1)
	go func() {
		for i := 0; i < total; i++ {
			if err := j.Put(fmt.Sprintf("tg/unit-%04d", i), []byte(fmt.Sprintf("value-%d", i))); err != nil {
				done <- err
				return
			}
			written.Add(1)
		}
		done <- nil
	}()

	prev := 0
	snapshots := 0
	for {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
			// Final snapshot sees everything.
			recs, fp, err := ReadFile(path)
			if err != nil || fp != "fp-live" || len(recs) != total {
				t.Fatalf("final snapshot = (%d recs, %q, %v), want (%d, fp-live, nil)", len(recs), fp, err, total)
			}
			if snapshots == 0 {
				t.Fatal("no mid-write snapshots taken; raise total")
			}
			return
		default:
		}

		lo := int(written.Load()) // records durably attempted before this read
		recs, fp, err := ReadFile(path)
		if err != nil {
			t.Fatalf("mid-write ReadFile: %v", err)
		}
		snapshots++
		if len(recs) > 0 && fp != "fp-live" {
			t.Fatalf("fingerprint = %q mid-write", fp)
		}
		// Prefix property: at least the writes that completed before the
		// read are visible, never more than have been started, and every
		// visible record is intact.
		if len(recs) < lo {
			t.Fatalf("snapshot lost records: %d visible < %d completed", len(recs), lo)
		}
		if len(recs) < prev {
			t.Fatalf("snapshot shrank: %d after %d", len(recs), prev)
		}
		prev = len(recs)
		for k, v := range recs {
			var i int
			if _, err := fmt.Sscanf(k, "tg/unit-%d", &i); err != nil {
				t.Fatalf("malformed key in snapshot: %q", k)
			}
			if want := fmt.Sprintf("value-%d", i); string(v) != want {
				t.Fatalf("torn record %q = %q, want %q", k, v, want)
			}
		}
	}
}

// TestMemoryJournalIsReadOnly: the Memory view used by the status
// computation replays records but refuses writes — a /status poller must
// never be able to mutate a run through its snapshot.
func TestMemoryJournalIsReadOnly(t *testing.T) {
	m := Memory(map[string][]byte{"tg/a": []byte("va")})
	if v, ok := m.Get("tg/a"); !ok || string(v) != "va" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	if !m.Has("tg/a") || m.Has("tg/b") {
		t.Error("Has sees wrong records")
	}
	if err := m.Put("tg/b", []byte("vb")); err == nil {
		t.Error("Put on a Memory journal must fail")
	}
	if err := m.Reset(); err == nil {
		t.Error("Reset on a Memory journal must fail")
	}
	if m.Has("tg/b") {
		t.Error("failed Put still registered the record")
	}
	if err := m.Close(); err != nil {
		t.Errorf("Close on a Memory journal: %v", err)
	}
}
