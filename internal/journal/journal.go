// Package journal is the durable run journal behind crash-safe analyses:
// an append-only, content-addressed record store that survives SIGKILL,
// torn writes and process crashes, so a resumed analysis can skip every
// unit of work a previous attempt already completed.
//
// # Format
//
// The on-disk file is a sequence of CRC-framed records:
//
//	frame   := length(uint32 LE) crc32(uint32 LE, IEEE over payload) payload
//	payload := keyLen(uvarint) key value
//
// Appends are atomic with respect to the in-process writer (a mutex) but
// the file itself makes no atomicity assumption: a crash can leave a torn
// final frame. Open tolerates that by scanning frames from the start and
// truncating the file at the first bad frame — short header, implausible
// length, or CRC mismatch — so a journal is always readable up to its last
// intact record and appendable from there.
//
// # Content addressing
//
// Records are keyed by logical unit identity (a target path key, a
// campaign-tagged vector index, a sweep bound), never by position: replays
// load records into a map and duplicate appends of a key are idempotent —
// the first intact record wins, which is safe because every journaled unit
// is a pure function of (program, options fingerprint, key). The
// fingerprint itself is a reserved record written by Bind: reopening a
// journal against a different program or configuration resets it to empty
// instead of silently reusing stale results.
//
// # Durability and multi-process safety
//
// Open takes an exclusive advisory lock (flock) on the journal file for the
// life of the handle, so two processes can never interleave frames into one
// file; a second Open of a locked path fails with ErrLocked. The lock is
// per open file description: a second Open in the same process conflicts
// too, which is deliberate — one journal file has exactly one writer.
// ReadFile is the lock-free complement for readers that can tolerate a
// snapshot (the distributed coordinator merging a dead worker's journal).
//
// By default appends reach the operating system (a write syscall) but are
// not fsynced: a record is durable against the process dying — SIGKILL,
// panic, torn final write — the moment Put returns, but an ill-timed power
// loss or kernel crash can still lose recently appended frames. Callers
// that need power-loss durability (the distributed ledger's merge of
// completion records) opt in with SetSync, which fsyncs after every append.
//
// All methods are nil-receiver safe, so pipeline stages journal
// unconditionally and an un-journaled run pays one nil check per site.
package journal

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"sync"
)

// ErrLocked reports that the journal file is already open — by another
// process, or by another handle in this one. Matched with errors.Is.
var ErrLocked = errors.New("journal file locked by another process")

// fingerprintKey is the reserved key binding a journal to one (program,
// options) identity. It starts with a NUL so no stage key can collide.
const fingerprintKey = "\x00fingerprint"

// maxFrame bounds a frame payload; a length field beyond it marks a torn
// or corrupted frame rather than a huge record.
const maxFrame = 1 << 28

// Journal is one open run journal. The zero value and the nil pointer are
// inert: every method on a nil *Journal is a no-op, so call sites thread a
// possibly-absent journal without branching.
type Journal struct {
	mu      sync.Mutex
	path    string
	f       *os.File
	records map[string][]byte
	// sync, when set, fsyncs after every append (see SetSync).
	sync bool
	// appended counts frames written by this process (not replayed ones);
	// hits counts Get calls that found a record — the resumed-unit count.
	appended int
	hits     int
	// appendHook, when set, observes every successful append with the key
	// just written and the running appended count. The chaos harness uses
	// it to kill a run after a chosen amount of progress; distributed
	// workers use it to detect when their assigned units have drained.
	// Called with the journal lock held: the hook must not call back into
	// the Journal.
	appendHook func(key string, total int)
}

// Open opens (or creates) the journal at path, takes an exclusive advisory
// lock on it (failing with ErrLocked if another handle holds it), replays
// every intact frame into memory, and truncates any torn tail so
// subsequent appends start at a clean frame boundary.
func Open(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	if err := lockFile(f); err != nil {
		f.Close()
		if errors.Is(err, ErrLocked) {
			return nil, fmt.Errorf("journal: %s: %w", path, ErrLocked)
		}
		return nil, fmt.Errorf("journal: locking %s: %w", path, err)
	}
	j := &Journal{path: path, f: f, records: map[string][]byte{}}
	if err := j.replay(); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

// replay scans frames from the start of the file, loading the first intact
// record for each key and truncating at the first bad frame.
func (j *Journal) replay() error {
	data, err := os.ReadFile(j.path)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	good := scanFrames(data, func(key string, val []byte) {
		if _, dup := j.records[key]; !dup {
			// First intact record wins: records are content-addressed, so a
			// duplicate append of the same key carries the same content.
			j.records[key] = val
		}
	})
	if good < len(data) {
		if err := j.f.Truncate(int64(good)); err != nil {
			return fmt.Errorf("journal: truncating torn tail: %w", err)
		}
	}
	if _, err := j.f.Seek(int64(good), 0); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	return nil
}

// scanFrames walks the framed records in data, calling visit for each
// intact one in file order, and returns the byte offset of the first bad
// frame (== len(data) for a clean file).
func scanFrames(data []byte, visit func(key string, val []byte)) (good int) {
	for good < len(data) {
		rest := data[good:]
		if len(rest) < 8 {
			break // torn header
		}
		length := binary.LittleEndian.Uint32(rest[:4])
		if length == 0 || length > maxFrame || int(length) > len(rest)-8 {
			break // implausible or torn length
		}
		payload := rest[8 : 8+int(length)]
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(rest[4:8]) {
			break // corrupted payload
		}
		key, val, ok := splitPayload(payload)
		if !ok {
			break
		}
		visit(key, val)
		good += 8 + int(length)
	}
	return good
}

// ReadFile loads a snapshot of the journal file at path without locking or
// modifying it: every intact frame up to the first bad one, first write
// wins, with the fingerprint record split out. The distributed coordinator
// uses it to harvest records from a dead (or still-running) worker's
// journal — a torn tail simply ends the snapshot early.
func ReadFile(path string) (records map[string][]byte, fingerprint string, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, "", fmt.Errorf("journal: %w", err)
	}
	records = map[string][]byte{}
	scanFrames(data, func(key string, val []byte) {
		if _, dup := records[key]; !dup {
			records[key] = val
		}
	})
	if fp, ok := records[fingerprintKey]; ok {
		fingerprint = string(fp)
		delete(records, fingerprintKey)
	}
	return records, fingerprint, nil
}

// ReadFileFrom is ReadFile restricted to frames at or after byte offset:
// it loads the records whose frames start at offset (which must be 0 or a
// frame boundary — typically a previous call's end), first write wins
// within the scanned range, and returns the offset just past the last
// intact frame. A remote journal stream resumes from exactly this offset:
// the stale reader's records plus the tail from end reconstruct the full
// record set, however the stream was torn in between. The fingerprint
// record is excluded, like ReadFile's record map.
func ReadFileFrom(path string, offset int64) (records map[string][]byte, end int64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, fmt.Errorf("journal: %w", err)
	}
	if offset < 0 || offset > int64(len(data)) {
		return nil, 0, fmt.Errorf("journal: offset %d outside file of %d bytes", offset, len(data))
	}
	records = map[string][]byte{}
	good := scanFrames(data[offset:], func(key string, val []byte) {
		if key == fingerprintKey {
			return
		}
		if _, dup := records[key]; !dup {
			records[key] = val
		}
	})
	return records, offset + int64(good), nil
}

// NextFrame decodes the first complete intact frame at the head of buf,
// returning its key, value and total encoded size (header included), so a
// streaming reader can consume buf[:n] verbatim and keep the rest. n == 0
// with a nil error means buf holds only a frame prefix — read more bytes.
// A non-nil error means the head cannot begin a valid frame (implausible
// length, CRC mismatch, malformed payload): the stream is corrupt and must
// be re-synced from a known frame boundary.
func NextFrame(buf []byte) (key string, val []byte, n int, err error) {
	if len(buf) < 8 {
		return "", nil, 0, nil
	}
	length := binary.LittleEndian.Uint32(buf[:4])
	if length == 0 || length > maxFrame {
		return "", nil, 0, errors.New("journal: implausible frame length")
	}
	if int(length) > len(buf)-8 {
		return "", nil, 0, nil
	}
	payload := buf[8 : 8+int(length)]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(buf[4:8]) {
		return "", nil, 0, errors.New("journal: frame CRC mismatch")
	}
	key, val, ok := splitPayload(payload)
	if !ok {
		return "", nil, 0, errors.New("journal: malformed frame payload")
	}
	return key, val, 8 + int(length), nil
}

// Memory wraps a record snapshot (typically from ReadFile) in a read-only
// in-memory Journal: reads work as usual, appends and resets fail with an
// error instead of touching any file. The live status poller uses it to
// run planning reads (frontier progress, missing-key scans) against a
// lock-free snapshot while another process owns the journal's flock.
func Memory(records map[string][]byte) *Journal {
	j := &Journal{records: make(map[string][]byte, len(records))}
	for k, v := range records {
		j.records[k] = v
	}
	return j
}

// errReadOnly reports a write on a Memory journal.
var errReadOnly = errors.New("journal: read-only in-memory snapshot")

func splitPayload(payload []byte) (key string, val []byte, ok bool) {
	klen, n := binary.Uvarint(payload)
	if n <= 0 || int(klen) > len(payload)-n {
		return "", nil, false
	}
	key = string(payload[n : n+int(klen)])
	return key, payload[n+int(klen):], true
}

// Close releases the underlying file (and with it the advisory lock).
// Records already appended stay on disk; the journal must not be used
// afterwards.
func (j *Journal) Close() error {
	if j == nil || j.f == nil {
		return nil
	}
	return j.f.Close()
}

// Path returns the journal's file path ("" for a nil journal).
func (j *Journal) Path() string {
	if j == nil {
		return ""
	}
	return j.path
}

// Len reports the number of stage records available for resume (the
// fingerprint record is excluded).
func (j *Journal) Len() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	n := len(j.records)
	if _, ok := j.records[fingerprintKey]; ok {
		n--
	}
	return n
}

// Hits reports how many Get calls found a journaled record since Open —
// the number of work units this process resumed instead of recomputing.
func (j *Journal) Hits() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.hits
}

// Appended reports how many frames this process has written since Open.
func (j *Journal) Appended() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appended
}

// Fingerprint returns the identity the journal is bound to, if Bind (here
// or in a previous run) has recorded one.
func (j *Journal) Fingerprint() (string, bool) {
	if j == nil {
		return "", false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	fp, ok := j.records[fingerprintKey]
	return string(fp), ok
}

// Bind ties the journal to one (program, options) fingerprint. A journal
// already bound to the same fingerprint keeps its records and returns how
// many are available for resume; a fingerprint mismatch — the journal was
// written by a different program or configuration — resets the journal to
// empty and starts a clean run, because replaying records that a different
// analysis produced would silently corrupt the report.
func (j *Journal) Bind(fingerprint string) (resumable int, err error) {
	if j == nil {
		return 0, nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if prev, ok := j.records[fingerprintKey]; ok {
		if string(prev) == fingerprint {
			n := len(j.records) - 1
			return n, nil
		}
		if err := j.resetLocked(); err != nil {
			return 0, err
		}
	}
	if err := j.appendLocked(fingerprintKey, []byte(fingerprint)); err != nil {
		return 0, err
	}
	return 0, nil
}

// Reset drops every record and truncates the file to empty.
func (j *Journal) Reset() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.resetLocked()
}

func (j *Journal) resetLocked() error {
	if j.f == nil {
		return errReadOnly
	}
	if err := j.f.Truncate(0); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if _, err := j.f.Seek(0, 0); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	j.records = map[string][]byte{}
	return nil
}

// Get returns the journaled value for key, if any. A hit counts toward
// Hits — it means one unit of work will be replayed, not redone.
func (j *Journal) Get(key string) ([]byte, bool) {
	if j == nil {
		return nil, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	v, ok := j.records[key]
	if ok {
		j.hits++
	}
	return v, ok
}

// Has reports whether key is journaled, without counting a resume hit.
// Planning reads (the distributed frontier, merge bookkeeping) use it so
// Report.ResumedUnits keeps meaning "units replayed instead of computed".
func (j *Journal) Has(key string) bool {
	if j == nil {
		return false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	_, ok := j.records[key]
	return ok
}

// Peek returns the journaled value for key without counting a resume hit.
func (j *Journal) Peek(key string) ([]byte, bool) {
	if j == nil {
		return nil, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	v, ok := j.records[key]
	return v, ok
}

// PeekJSON decodes the journaled value for key into v without counting a
// resume hit; a record that fails to decode is treated as absent.
func (j *Journal) PeekJSON(key string, v any) bool {
	data, ok := j.Peek(key)
	if !ok {
		return false
	}
	return json.Unmarshal(data, v) == nil
}

// Put appends one record. Appending a key that is already journaled is a
// no-op (records are content-addressed; the first write wins), so resumed
// runs may re-put replayed units without growing the file.
func (j *Journal) Put(key string, val []byte) error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, dup := j.records[key]; dup {
		return nil
	}
	return j.appendLocked(key, val)
}

func (j *Journal) appendLocked(key string, val []byte) error {
	if j.f == nil {
		return errReadOnly
	}
	// One frame, one write: header and payload go down in a single syscall,
	// which halves the append cost and shrinks the torn-tail window to a
	// single partial write.
	frame := make([]byte, 8, 8+binary.MaxVarintLen64+len(key)+len(val))
	var kl [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(kl[:], uint64(len(key)))
	frame = append(frame, kl[:n]...)
	frame = append(frame, key...)
	frame = append(frame, val...)
	binary.LittleEndian.PutUint32(frame[:4], uint32(len(frame)-8))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(frame[8:]))
	if _, err := j.f.Write(frame); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if j.sync {
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("journal: sync: %w", err)
		}
	}
	j.records[key] = val
	j.appended++
	if j.appendHook != nil {
		j.appendHook(key, j.appended)
	}
	return nil
}

// PutJSON journals v under key using a deterministic JSON encoding
// (encoding/json sorts map keys).
func (j *Journal) PutJSON(key string, v any) error {
	if j == nil {
		return nil
	}
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("journal: encoding %q: %w", key, err)
	}
	return j.Put(key, data)
}

// GetJSON decodes the journaled value for key into v, reporting whether a
// record existed and decoded cleanly. A record that fails to decode is
// treated as absent — the unit is recomputed rather than trusted.
func (j *Journal) GetJSON(key string, v any) bool {
	data, ok := j.Get(key)
	if !ok {
		return false
	}
	return json.Unmarshal(data, v) == nil
}

// SetSync toggles power-loss durability: when on, every append is followed
// by an fsync before Put returns. The default (off) is durable against the
// process dying but not against the machine dying — see the package
// comment. The distributed coordinator turns it on while merging worker
// completion records into the canonical journal.
func (j *Journal) SetSync(on bool) {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.sync = on
	j.mu.Unlock()
}

// SetAppendHook installs a hook observing every append with the key just
// written and the running per-process append count. The chaos soak harness
// uses it to cancel a run after a chosen amount of durable progress;
// distributed workers use it to complete Scope units. The hook runs with
// the journal lock held and must not call back into the Journal.
func (j *Journal) SetAppendHook(hook func(key string, total int)) {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.appendHook = hook
	j.mu.Unlock()
}

// ---------------------------------------------------------------------------
// Context plumbing — the journal rides the analysis context exactly like
// the fault injector and the observer, so stage signatures stay unchanged.

type ctxKey struct{}

// With attaches a journal to the context; nil detaches.
func With(ctx context.Context, j *Journal) context.Context {
	return context.WithValue(ctx, ctxKey{}, j)
}

// From retrieves the context's journal, or nil.
func From(ctx context.Context) *Journal {
	j, _ := ctx.Value(ctxKey{}).(*Journal)
	return j
}
