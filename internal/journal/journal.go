// Package journal is the durable run journal behind crash-safe analyses:
// an append-only, content-addressed record store that survives SIGKILL,
// torn writes and process crashes, so a resumed analysis can skip every
// unit of work a previous attempt already completed.
//
// # Format
//
// The on-disk file is a sequence of CRC-framed records:
//
//	frame   := length(uint32 LE) crc32(uint32 LE, IEEE over payload) payload
//	payload := keyLen(uvarint) key value
//
// Appends are atomic with respect to the in-process writer (a mutex) but
// the file itself makes no atomicity assumption: a crash can leave a torn
// final frame. Open tolerates that by scanning frames from the start and
// truncating the file at the first bad frame — short header, implausible
// length, or CRC mismatch — so a journal is always readable up to its last
// intact record and appendable from there.
//
// # Content addressing
//
// Records are keyed by logical unit identity (a target path key, a
// campaign-tagged vector index, a sweep bound), never by position: replays
// load records into a map and duplicate appends of a key are idempotent —
// the first intact record wins, which is safe because every journaled unit
// is a pure function of (program, options fingerprint, key). The
// fingerprint itself is a reserved record written by Bind: reopening a
// journal against a different program or configuration resets it to empty
// instead of silently reusing stale results.
//
// All methods are nil-receiver safe, so pipeline stages journal
// unconditionally and an un-journaled run pays one nil check per site.
package journal

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"sync"
)

// fingerprintKey is the reserved key binding a journal to one (program,
// options) identity. It starts with a NUL so no stage key can collide.
const fingerprintKey = "\x00fingerprint"

// maxFrame bounds a frame payload; a length field beyond it marks a torn
// or corrupted frame rather than a huge record.
const maxFrame = 1 << 28

// Journal is one open run journal. The zero value and the nil pointer are
// inert: every method on a nil *Journal is a no-op, so call sites thread a
// possibly-absent journal without branching.
type Journal struct {
	mu      sync.Mutex
	path    string
	f       *os.File
	records map[string][]byte
	// appended counts frames written by this process (not replayed ones);
	// hits counts Get calls that found a record — the resumed-unit count.
	appended int
	hits     int
	// appendHook, when set, observes every successful append with the
	// running appended count. The chaos harness uses it to kill a run after
	// a chosen amount of progress. Called with the journal lock held: the
	// hook must not call back into the Journal.
	appendHook func(total int)
}

// Open opens (or creates) the journal at path, replays every intact frame
// into memory, and truncates any torn tail so subsequent appends start at
// a clean frame boundary.
func Open(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	j := &Journal{path: path, f: f, records: map[string][]byte{}}
	if err := j.replay(); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

// replay scans frames from the start of the file, loading the first intact
// record for each key and truncating at the first bad frame.
func (j *Journal) replay() error {
	data, err := os.ReadFile(j.path)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	good := 0
	for good < len(data) {
		rest := data[good:]
		if len(rest) < 8 {
			break // torn header
		}
		length := binary.LittleEndian.Uint32(rest[:4])
		if length == 0 || length > maxFrame || int(length) > len(rest)-8 {
			break // implausible or torn length
		}
		payload := rest[8 : 8+int(length)]
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(rest[4:8]) {
			break // corrupted payload
		}
		key, val, ok := splitPayload(payload)
		if !ok {
			break
		}
		if _, dup := j.records[key]; !dup {
			// First intact record wins: records are content-addressed, so a
			// duplicate append of the same key carries the same content.
			j.records[key] = val
		}
		good += 8 + int(length)
	}
	if good < len(data) {
		if err := j.f.Truncate(int64(good)); err != nil {
			return fmt.Errorf("journal: truncating torn tail: %w", err)
		}
	}
	if _, err := j.f.Seek(int64(good), 0); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	return nil
}

func splitPayload(payload []byte) (key string, val []byte, ok bool) {
	klen, n := binary.Uvarint(payload)
	if n <= 0 || int(klen) > len(payload)-n {
		return "", nil, false
	}
	key = string(payload[n : n+int(klen)])
	return key, payload[n+int(klen):], true
}

// Close releases the underlying file. Records already appended stay on
// disk; the journal must not be used afterwards.
func (j *Journal) Close() error {
	if j == nil || j.f == nil {
		return nil
	}
	return j.f.Close()
}

// Path returns the journal's file path ("" for a nil journal).
func (j *Journal) Path() string {
	if j == nil {
		return ""
	}
	return j.path
}

// Len reports the number of stage records available for resume (the
// fingerprint record is excluded).
func (j *Journal) Len() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	n := len(j.records)
	if _, ok := j.records[fingerprintKey]; ok {
		n--
	}
	return n
}

// Hits reports how many Get calls found a journaled record since Open —
// the number of work units this process resumed instead of recomputing.
func (j *Journal) Hits() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.hits
}

// Bind ties the journal to one (program, options) fingerprint. A journal
// already bound to the same fingerprint keeps its records and returns how
// many are available for resume; a fingerprint mismatch — the journal was
// written by a different program or configuration — resets the journal to
// empty and starts a clean run, because replaying records that a different
// analysis produced would silently corrupt the report.
func (j *Journal) Bind(fingerprint string) (resumable int, err error) {
	if j == nil {
		return 0, nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if prev, ok := j.records[fingerprintKey]; ok {
		if string(prev) == fingerprint {
			n := len(j.records) - 1
			return n, nil
		}
		if err := j.resetLocked(); err != nil {
			return 0, err
		}
	}
	if err := j.appendLocked(fingerprintKey, []byte(fingerprint)); err != nil {
		return 0, err
	}
	return 0, nil
}

// Reset drops every record and truncates the file to empty.
func (j *Journal) Reset() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.resetLocked()
}

func (j *Journal) resetLocked() error {
	if err := j.f.Truncate(0); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if _, err := j.f.Seek(0, 0); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	j.records = map[string][]byte{}
	return nil
}

// Get returns the journaled value for key, if any. A hit counts toward
// Hits — it means one unit of work will be replayed, not redone.
func (j *Journal) Get(key string) ([]byte, bool) {
	if j == nil {
		return nil, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	v, ok := j.records[key]
	if ok {
		j.hits++
	}
	return v, ok
}

// Put appends one record. Appending a key that is already journaled is a
// no-op (records are content-addressed; the first write wins), so resumed
// runs may re-put replayed units without growing the file.
func (j *Journal) Put(key string, val []byte) error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, dup := j.records[key]; dup {
		return nil
	}
	return j.appendLocked(key, val)
}

func (j *Journal) appendLocked(key string, val []byte) error {
	// One frame, one write: header and payload go down in a single syscall,
	// which halves the append cost and shrinks the torn-tail window to a
	// single partial write.
	frame := make([]byte, 8, 8+binary.MaxVarintLen64+len(key)+len(val))
	var kl [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(kl[:], uint64(len(key)))
	frame = append(frame, kl[:n]...)
	frame = append(frame, key...)
	frame = append(frame, val...)
	binary.LittleEndian.PutUint32(frame[:4], uint32(len(frame)-8))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(frame[8:]))
	if _, err := j.f.Write(frame); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	j.records[key] = val
	j.appended++
	if j.appendHook != nil {
		j.appendHook(j.appended)
	}
	return nil
}

// PutJSON journals v under key using a deterministic JSON encoding
// (encoding/json sorts map keys).
func (j *Journal) PutJSON(key string, v any) error {
	if j == nil {
		return nil
	}
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("journal: encoding %q: %w", key, err)
	}
	return j.Put(key, data)
}

// GetJSON decodes the journaled value for key into v, reporting whether a
// record existed and decoded cleanly. A record that fails to decode is
// treated as absent — the unit is recomputed rather than trusted.
func (j *Journal) GetJSON(key string, v any) bool {
	data, ok := j.Get(key)
	if !ok {
		return false
	}
	return json.Unmarshal(data, v) == nil
}

// SetAppendHook installs a test hook observing every append with the
// running per-process append count. The chaos soak harness uses it to
// cancel a run after a chosen amount of durable progress. The hook runs
// with the journal lock held and must not call back into the Journal.
func (j *Journal) SetAppendHook(hook func(total int)) {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.appendHook = hook
	j.mu.Unlock()
}

// ---------------------------------------------------------------------------
// Context plumbing — the journal rides the analysis context exactly like
// the fault injector and the observer, so stage signatures stay unchanged.

type ctxKey struct{}

// With attaches a journal to the context; nil detaches.
func With(ctx context.Context, j *Journal) context.Context {
	return context.WithValue(ctx, ctxKey{}, j)
}

// From retrieves the context's journal, or nil.
func From(ctx context.Context) *Journal {
	j, _ := ctx.Value(ctxKey{}).(*Journal)
	return j
}
