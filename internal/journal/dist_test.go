package journal

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// Two Opens of one path must conflict — the advisory lock is what keeps a
// coordinator and a stray worker from interleaving frames into one file.
func TestOpenLockedTwice(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	j := openT(t, path)
	if err := j.Put("tg/a", []byte("v")); err != nil {
		t.Fatal(err)
	}
	second, err := Open(path)
	if err == nil {
		second.Close()
		t.Fatal("second Open of a locked journal succeeded, want ErrLocked")
	}
	if !errors.Is(err, ErrLocked) {
		t.Fatalf("second Open error = %v, want ErrLocked", err)
	}
	// Closing the first handle releases the lock.
	j.Close()
	third, err := Open(path)
	if err != nil {
		t.Fatalf("Open after Close = %v, want success", err)
	}
	defer third.Close()
	if v, ok := third.Get("tg/a"); !ok || string(v) != "v" {
		t.Fatalf("record lost across lock cycle: (%q, %v)", v, ok)
	}
}

func TestSyncMode(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	j := openT(t, path)
	j.SetSync(true)
	if err := j.Put("tg/a", []byte("synced")); err != nil {
		t.Fatal(err)
	}
	j.SetSync(false)
	if err := j.Put("tg/b", []byte("unsynced")); err != nil {
		t.Fatal(err)
	}
	j.Close()
	r := openT(t, path)
	for k, want := range map[string]string{"tg/a": "synced", "tg/b": "unsynced"} {
		if v, ok := r.Get(k); !ok || string(v) != want {
			t.Errorf("Get(%s) = (%q, %v), want %q", k, v, ok, want)
		}
	}
	// Nil journal: no-op.
	(*Journal)(nil).SetSync(true)
}

// Has/Peek/PeekJSON are planning reads: they must not inflate Hits, which
// feeds Report.ResumedUnits.
func TestPeekDoesNotCountHits(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	j := openT(t, path)
	if err := j.PutJSON("tg/a", map[string]int{"v": 7}); err != nil {
		t.Fatal(err)
	}
	if !j.Has("tg/a") || j.Has("tg/b") {
		t.Error("Has answered wrong")
	}
	if v, ok := j.Peek("tg/a"); !ok || len(v) == 0 {
		t.Error("Peek missed an existing record")
	}
	var m map[string]int
	if !j.PeekJSON("tg/a", &m) || m["v"] != 7 {
		t.Errorf("PeekJSON = %v, want v=7", m)
	}
	if j.Hits() != 0 {
		t.Errorf("Hits after planning reads = %d, want 0", j.Hits())
	}
	if _, ok := j.Get("tg/a"); !ok || j.Hits() != 1 {
		t.Errorf("Get should count exactly one hit, got %d", j.Hits())
	}
	if fp, ok := j.Fingerprint(); ok || fp != "" {
		t.Errorf("Fingerprint on unbound journal = (%q, %v), want absent", fp, ok)
	}
	if _, err := j.Bind("fp-x"); err != nil {
		t.Fatal(err)
	}
	if fp, ok := j.Fingerprint(); !ok || fp != "fp-x" {
		t.Errorf("Fingerprint = (%q, %v), want fp-x", fp, ok)
	}
	if j.Appended() != 2 {
		t.Errorf("Appended = %d, want 2 (one record + fingerprint)", j.Appended())
	}
}

// ReadFile snapshots a journal another handle holds locked, stops at a
// torn tail, and splits out the fingerprint.
func TestReadFileSnapshot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	j := openT(t, path)
	if _, err := j.Bind("fp-snap"); err != nil {
		t.Fatal(err)
	}
	j.Put("tg/a", []byte("va"))
	j.Put("tg/b", []byte("vb"))

	// Locked by j — ReadFile must still work.
	recs, fp, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if fp != "fp-snap" {
		t.Errorf("fingerprint = %q, want fp-snap", fp)
	}
	if len(recs) != 2 || string(recs["tg/a"]) != "va" || string(recs["tg/b"]) != "vb" {
		t.Errorf("records = %v", recs)
	}
	j.Close()

	// Torn tail: the snapshot ends at the last intact frame.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{9, 0, 0, 0, 1, 2}) // length=9 but only 2 payload bytes
	f.Close()
	recs, fp, err = ReadFile(path)
	if err != nil || fp != "fp-snap" || len(recs) != 2 {
		t.Errorf("ReadFile with torn tail = (%d recs, %q, %v), want (2, fp-snap, nil)", len(recs), fp, err)
	}
}

func TestScopeLifecycle(t *testing.T) {
	s := NewScope([]string{"ga/a", "ga/b", "ga/a"}) // duplicate collapses
	if !s.Owns("ga/a") || s.Owns("tg/x") {
		t.Error("ownership wrong")
	}
	if s.Drained() {
		t.Error("fresh scope reports drained")
	}
	fired := 0
	s.OnDrained(func() { fired++ })
	s.Complete("tg/x") // unowned: ignored
	s.Complete("ga/a")
	s.Complete("ga/a") // repeat: ignored
	if got := s.Remaining(); len(got) != 1 || got[0] != "ga/b" {
		t.Errorf("Remaining = %v, want [ga/b]", got)
	}
	if fired != 0 {
		t.Error("drained early")
	}
	s.Complete("ga/b")
	if fired != 1 || !s.Drained() {
		t.Errorf("fired=%d drained=%v, want 1/true", fired, s.Drained())
	}
	// Registering on an already-drained scope fires immediately.
	s.OnDrained(func() { fired++ })
	if fired != 2 {
		t.Errorf("late OnDrained fired=%d, want 2", fired)
	}

	// Nil scope: unscoped semantics.
	var nilScope *Scope
	if !nilScope.Owns("anything") {
		t.Error("nil scope must own everything")
	}
	if nilScope.Drained() {
		t.Error("nil scope must never drain")
	}
	nilScope.Complete("anything")
	if nilScope.Remaining() != nil {
		t.Error("nil scope Remaining should be nil")
	}

	// Context plumbing.
	ctx := WithScope(context.Background(), s)
	if ScopeFrom(ctx) != s {
		t.Error("scope lost in context")
	}
	if ScopeFrom(context.Background()) != nil {
		t.Error("empty context should yield nil scope")
	}

	// An empty scope is drained from birth; OnDrained fires at once.
	empty := NewScope(nil)
	immediate := false
	empty.OnDrained(func() { immediate = true })
	if !immediate || !empty.Drained() {
		t.Error("empty scope must drain immediately")
	}
}
