package gen

import (
	"testing"

	"wcet/internal/cc/parser"
	"wcet/internal/cc/sem"
	"wcet/internal/cfg"
	"wcet/internal/partition"
)

func build(t *testing.T, conf Config) (*Program, *cfg.Graph) {
	t.Helper()
	p := Generate(conf)
	f, err := parser.ParseFile("gen.c", p.Source)
	if err != nil {
		t.Fatalf("generated source does not parse: %v", err)
	}
	if _, err := sem.Check(f); err != nil {
		t.Fatalf("generated source does not check: %v", err)
	}
	g, err := cfg.Build(f.Func(p.FuncName))
	if err != nil {
		t.Fatalf("cfg: %v", err)
	}
	return p, g
}

func TestDeterministic(t *testing.T) {
	a := Generate(Config{Seed: 5, Branches: 40})
	b := Generate(Config{Seed: 5, Branches: 40})
	if a.Source != b.Source {
		t.Error("same seed produced different programs")
	}
	c := Generate(Config{Seed: 6, Branches: 40})
	if a.Source == c.Source {
		t.Error("different seeds produced identical programs")
	}
}

func TestGeneratedProgramWellFormed(t *testing.T) {
	p, g := build(t, Config{Seed: 1, Branches: 60})
	if p.Branches < 60 {
		t.Errorf("branches = %d, want ≥ 60", p.Branches)
	}
	if got := g.CondBranches(); got < 60 {
		t.Errorf("CFG decisions = %d, want ≥ 60", got)
	}
	// Loop-free by construction.
	if len(g.BackEdges()) != 0 {
		t.Error("generated code must be loop-free")
	}
}

// TestPaperScale reproduces the Section 2.3 workload: ~300 conditional
// branches yield a CFG of roughly 850 basic blocks and ~5000 source lines.
func TestPaperScale(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	p, g := build(t, Config{Seed: 42, Branches: 300})
	nodes := g.NumNodes()
	if nodes < 600 || nodes > 1200 {
		t.Errorf("basic blocks = %d, want the paper's ≈850 ball park", nodes)
	}
	if p.Lines < 1500 {
		t.Errorf("lines = %d, want thousands", p.Lines)
	}
	branches := g.CondBranches()
	if branches < 250 || branches > 400 {
		t.Errorf("decisions = %d, want ≈300", branches)
	}
}

// TestSweepShape checks the qualitative shape of Figures 2 and 3 on a
// mid-size instance: ip = 2·blocks at b=1, ip non-increasing in b, ending
// at 2 (end-to-end) where m explodes beyond any fixed budget.
func TestSweepShape(t *testing.T) {
	_, g := build(t, Config{Seed: 7, Branches: 80})
	bounds := partition.DefaultBounds(g, 200)
	points, err := partition.Sweep(g, bounds)
	if err != nil {
		t.Fatal(err)
	}
	if points[0].IP != 2*g.NumNodes() {
		t.Errorf("ip(b=1) = %d, want %d", points[0].IP, 2*g.NumNodes())
	}
	for i := 1; i < len(points); i++ {
		if points[i].IP > points[i-1].IP {
			t.Errorf("ip not monotone at bound %s", points[i].Bound)
		}
	}
	last := points[len(points)-1]
	if last.IP != 2 {
		t.Errorf("final ip = %d, want 2 (end-to-end)", last.IP)
	}
	first := points[0]
	// Figure 3's explosion: end-to-end measurements dwarf block-level ones.
	if last.M.CmpCount(first.M) <= 0 {
		t.Errorf("end-to-end m (%s) must exceed block-level m (%s)", last.M, first.M)
	}
}

// TestMidBoundReachesFewHundredIPs reflects the paper's report that their
// simple partitioning reached ≈500 instrumentation points on the
// industrial function.
func TestMidBoundReachesFewHundredIPs(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	_, g := build(t, Config{Seed: 42, Branches: 300})
	bounds := partition.DefaultBounds(g, 200)
	points, err := partition.Sweep(g, bounds)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, pt := range points {
		if pt.IP >= 300 && pt.IP <= 800 {
			found = true
			break
		}
	}
	if !found {
		t.Error("no bound lands in the few-hundred instrumentation-point band")
	}
}
