// Package gen synthesises TargetLink-style automotive control code — the
// stand-in for the IP-restricted industrial applications of the paper's
// Section 2.3. The generator is seeded and deterministic; its output is
// loop-free nested if/switch control logic over annotated byte and boolean
// signals, the structure the paper reports (≈5000 lines, ≈850 basic
// blocks, ≈300 conditional branches per function).
package gen

import (
	"fmt"
	"math/rand"
	"strings"
)

// Config sizes the generated function.
type Config struct {
	// Seed drives all randomness.
	Seed int64
	// Branches is the target number of conditional decisions (if + switch);
	// the paper's functions have about 300.
	Branches int
	// Inputs is the number of input signals (default 12).
	Inputs int
	// States is the number of state/output variables (default 16).
	States int
	// MaxDepth bounds decision nesting (default 6).
	MaxDepth int
	// FuncName names the generated function (default "control_task").
	FuncName string
}

func (c Config) withDefaults() Config {
	if c.Branches == 0 {
		c.Branches = 300
	}
	if c.Inputs == 0 {
		c.Inputs = 12
	}
	if c.States == 0 {
		c.States = 16
	}
	if c.MaxDepth == 0 {
		c.MaxDepth = 6
	}
	if c.FuncName == "" {
		c.FuncName = "control_task"
	}
	return c
}

// Program is a generated translation unit.
type Program struct {
	Source   string
	FuncName string
	// Branches is the number of decisions actually emitted.
	Branches int
	// Lines is the source line count.
	Lines int
}

type generator struct {
	conf     Config
	rng      *rand.Rand
	b        strings.Builder
	indent   int
	branches int
	tmpSeq   int
	inputs   []string
	states   []string
}

// Generate produces a deterministic synthetic program for the config.
func Generate(conf Config) *Program {
	conf = conf.withDefaults()
	g := &generator{conf: conf, rng: rand.New(rand.NewSource(conf.Seed))}

	g.line("/* Synthetic TargetLink-style control function (seed %d). */", conf.Seed)
	for i := 0; i < conf.Inputs; i++ {
		name := fmt.Sprintf("in_sig%d", i)
		g.inputs = append(g.inputs, name)
		switch i % 3 {
		case 0:
			g.line("/*@ input */ /*@ range 0 1 */ int %s;", name)
		case 1:
			g.line("/*@ input */ /*@ range 0 100 */ char %s;", name)
		default:
			g.line("/*@ input */ /*@ range -50 50 */ char %s;", name)
		}
	}
	for i := 0; i < conf.States; i++ {
		name := fmt.Sprintf("st_var%d", i)
		g.states = append(g.states, name)
		if i%2 == 0 {
			g.line("char %s;", name)
		} else {
			g.line("int %s;", name)
		}
	}
	g.line("")
	g.line("void %s(void) {", conf.FuncName)
	g.indent++
	// A few compiler-temporary locals in the TargetLink style.
	for i := 0; i < 4; i++ {
		g.line("char Aux_U8_%d;", i)
	}
	g.stmtList(0, 3+g.rng.Intn(3))
	for g.branches < conf.Branches {
		g.stmtList(0, 2)
	}
	g.indent--
	g.line("}")

	src := g.b.String()
	return &Program{
		Source:   src,
		FuncName: conf.FuncName,
		Branches: g.branches,
		Lines:    strings.Count(src, "\n"),
	}
}

func (g *generator) line(format string, args ...any) {
	for i := 0; i < g.indent; i++ {
		g.b.WriteString("    ")
	}
	fmt.Fprintf(&g.b, format, args...)
	g.b.WriteByte('\n')
}

func (g *generator) stmtList(depth, n int) {
	for i := 0; i < n; i++ {
		g.stmt(depth)
	}
}

func (g *generator) stmt(depth int) {
	over := g.branches >= g.conf.Branches
	switch {
	case depth >= g.conf.MaxDepth || over || g.rng.Intn(100) < 35:
		g.assignment()
	case g.rng.Intn(100) < 70:
		g.ifStmt(depth)
	default:
		g.switchStmt(depth)
	}
}

func (g *generator) ifStmt(depth int) {
	g.branches++
	g.line("if (%s) {", g.condition())
	g.indent++
	g.stmtList(depth+1, 1+g.rng.Intn(3))
	g.indent--
	if g.rng.Intn(100) < 55 {
		g.line("} else {")
		g.indent++
		g.stmtList(depth+1, 1+g.rng.Intn(2))
		g.indent--
	}
	g.line("}")
}

func (g *generator) switchStmt(depth int) {
	g.branches++
	tag := g.pick(g.inputs)
	g.line("switch (%s) {", tag)
	cases := 2 + g.rng.Intn(3)
	for c := 0; c < cases; c++ {
		g.line("case %d:", c)
		g.indent++
		g.stmtList(depth+1, 1+g.rng.Intn(2))
		g.line("break;")
		g.indent--
	}
	g.line("default:")
	g.indent++
	g.stmtList(depth+1, 1)
	g.line("break;")
	g.indent--
	g.line("}")
}

func (g *generator) condition() string {
	a := g.pick(g.inputs)
	switch g.rng.Intn(5) {
	case 0:
		return fmt.Sprintf("%s == %d", a, g.rng.Intn(4))
	case 1:
		return fmt.Sprintf("%s > %d", a, g.rng.Intn(40))
	case 2:
		return fmt.Sprintf("%s < %d", a, g.rng.Intn(40))
	case 3:
		return fmt.Sprintf("%s != 0 && %s <= %d", a, g.pick(g.inputs), g.rng.Intn(30))
	default:
		return fmt.Sprintf("%s >= %d || %s == 1", a, 5+g.rng.Intn(30), g.pick(g.inputs))
	}
}

func (g *generator) assignment() {
	dst := g.pick(g.states)
	switch g.rng.Intn(6) {
	case 0:
		g.line("%s = %d;", dst, g.rng.Intn(100))
	case 1:
		g.line("%s = (char)(%s + %d);", dst, g.pick(g.inputs), g.rng.Intn(20))
	case 2:
		g.line("%s = (char)(%s - %s);", dst, g.pick(g.inputs), g.pick(g.inputs))
	case 3:
		// Temporary define-and-use in the compiler style.
		tmp := fmt.Sprintf("Aux_U8_%d", g.rng.Intn(4))
		g.line("%s = (char)(%s * 2);", tmp, g.pick(g.inputs))
		g.line("%s = (char)(%s + 1);", dst, tmp)
	case 4:
		g.line("%s = (char)(%s & 15);", dst, g.pick(g.inputs))
	default:
		g.line("update_output%d();", g.rng.Intn(8))
	}
}

func (g *generator) pick(list []string) string {
	return list[g.rng.Intn(len(list))]
}
