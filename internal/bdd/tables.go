package bdd

// Open-addressed hash tables of the kernel. Two shapes:
//
//   - uniqueTable backs hash consing. Slots hold node indices into the
//     manager's node array (0 — the terminal — doubles as "empty"), so the
//     table costs 4 bytes per slot and the key (level, lo, hi) lives only
//     once, in the node array itself.
//   - cache backs the ite/quant/perm operation caches: packed uint64 key
//     plus a 32-bit auxiliary, linear probing, 16 bytes per slot.
//
// Both use power-of-two capacities with a 3/4 load-factor rehash. Tables
// are per-Manager and single-threaded (each parallel model-checker worker
// builds a fresh Manager), so there is no locking anywhere.
//
// An empty cache slot is the zero value: legitimate cache keys are never
// zero (every packed key contains at least one regular non-terminal
// reference, which is ≥ 2), so initialisation and reset are a memclr
// rather than a sentinel-filling loop — measurable on the profile, since
// the caches are the largest arrays the kernel touches.

// hash3 mixes a (level, lo, hi) node triple.
func hash3(level int32, lo, hi Ref) uint32 {
	h := uint64(uint32(level))<<32 | uint64(uint32(lo))
	h *= 0x9E3779B97F4A7C15
	h ^= uint64(uint32(hi)) * 0xBF58476D1CE4E5B9
	h ^= h >> 29
	h *= 0x94D049BB133111EB
	h ^= h >> 32
	return uint32(h)
}

// mix hashes a packed cache key.
func mix(key uint64, aux uint32) uint32 {
	h := key * 0x9E3779B97F4A7C15
	h ^= uint64(aux) * 0xBF58476D1CE4E5B9
	h ^= h >> 32
	h *= 0x94D049BB133111EB
	h ^= h >> 29
	return uint32(h)
}

// uniqueTable is the hash-consing index over the manager's node array.
type uniqueTable struct {
	slots    []int32 // node index; 0 = empty (the terminal is never interned)
	mask     uint32
	rehashes int64 // lifetime growth count (kernel-health metric)
}

func (t *uniqueTable) init(capacity int) {
	t.slots = make([]int32, capacity)
	t.mask = uint32(capacity - 1)
}

// reset empties the table, reusing the backing array when its capacity
// matches the expected population and reallocating a right-sized one
// otherwise (a pooled manager must not make a small query clear — or keep
// resident — the giant table of a previous big query).
func (t *uniqueTable) reset(expect int) {
	want := tableCap(expect, 1<<10)
	if len(t.slots) == want {
		clear(t.slots)
		return
	}
	t.init(want)
}

// lookup finds the node with the given triple, or the slot to insert at.
// The caller appends the node and stores its index via commit.
func (t *uniqueTable) lookup(nodes []node, level int32, lo, hi Ref) (idx int32, slot uint32) {
	h := hash3(level, lo, hi) & t.mask
	for {
		s := t.slots[h]
		if s == 0 {
			return 0, h
		}
		n := &nodes[s]
		if n.level == level && n.lo == lo && n.hi == hi {
			return s, h
		}
		h = (h + 1) & t.mask
	}
}

// rehash rebuilds the table at double capacity from the node array.
func (t *uniqueTable) rehash(nodes []node) {
	t.rehashes++
	t.init(2 * len(t.slots))
	for i := 1; i < len(nodes); i++ {
		n := &nodes[i]
		h := hash3(n.level, n.lo, n.hi) & t.mask
		for t.slots[h] != 0 {
			h = (h + 1) & t.mask
		}
		t.slots[h] = int32(i)
	}
}

// centry is one operation-cache slot: a packed 64-bit key, a 32-bit
// auxiliary key component, and the cached result. The zero value marks an
// empty slot (valid keys are never zero).
type centry struct {
	key uint64
	aux uint32
	val Ref
}

// cache is an open-addressed operation cache (exact, growing — results are
// never evicted, so repeated subproblems always hit).
type cache struct {
	entries []centry
	mask    uint32
	used    int
	hits    int64 // lifetime hit/lookup tallies (kernel-health metric)
	lookups int64
}

func (c *cache) init(capacity int) {
	c.entries = make([]centry, capacity)
	c.mask = uint32(capacity - 1)
	c.used = 0
}

// reset empties the cache, reusing or right-sizing the backing array the
// same way uniqueTable.reset does. Population is measured by used entries,
// not capacity, so a pooled manager shrinks back after an oversized query.
func (c *cache) reset(base int) {
	want := tableCap(c.used, base)
	if len(c.entries) == want {
		clear(c.entries)
		c.used = 0
		return
	}
	c.init(want)
}

func (c *cache) get(key uint64, aux uint32) (Ref, bool) {
	c.lookups++
	h := mix(key, aux) & c.mask
	for {
		e := &c.entries[h]
		if e.key == 0 {
			return 0, false
		}
		if e.key == key && e.aux == aux {
			c.hits++
			return e.val, true
		}
		h = (h + 1) & c.mask
	}
}

func (c *cache) put(key uint64, aux uint32, val Ref) {
	if uint32(c.used+1) > (c.mask+1)/4*3 {
		c.grow()
	}
	h := mix(key, aux) & c.mask
	for {
		e := &c.entries[h]
		if e.key == 0 {
			*e = centry{key: key, aux: aux, val: val}
			c.used++
			return
		}
		if e.key == key && e.aux == aux {
			e.val = val
			return
		}
		h = (h + 1) & c.mask
	}
}

func (c *cache) grow() {
	old := c.entries
	used := c.used
	c.init(2 * len(old))
	for _, e := range old {
		if e.key == 0 {
			continue
		}
		h := mix(e.key, e.aux) & c.mask
		for c.entries[h].key != 0 {
			h = (h + 1) & c.mask
		}
		c.entries[h] = e
	}
	c.used = used
}

// memoryBytes is the exact backing-array footprint (16 bytes per slot).
func (c *cache) memoryBytes() int64 {
	return int64(len(c.entries)) * 16
}

// tableCap picks the power-of-two capacity for a table expected to hold n
// entries: the smallest power of two keeping the load factor under 3/4,
// with head-room for a same-sized session to run without growing, floored
// at base. Reset uses it both to decide whether a recycled array fits and
// to right-size a fresh one.
func tableCap(n, base int) int {
	want := base
	for want < 4*n/3+1 {
		want *= 2
	}
	return want
}
