package bdd

// Reference kernel for differential testing: a direct copy of the previous
// map-based, two-terminal implementation (no complement edges, Go-map unique
// table and caches). It is deliberately slow and simple — its only job is to
// be an independent oracle for the randomized equivalence tests in
// prop_test.go: both kernels build the same formulas and must agree on Eval
// over every assignment, on SatCount, and through AndExists/Rename.

import (
	"fmt"
	"sort"
)

type rRef int32

const (
	rFalse rRef = 0
	rTrue  rRef = 1
)

type rNode struct {
	level  int32
	lo, hi rRef
}

type rManager struct {
	nodes  []rNode
	unique map[[3]int32]rRef
	ite    map[[3]rRef]rRef
	quant  map[rQuantKey]rRef
	perm   map[rPermKey]rRef
	nvars  int
	cubes  []rCube
	perms  [][]int32
}

type rQuantKey struct {
	f    rRef
	cube int32
	conj rRef
}

type rPermKey struct {
	f    rRef
	perm int32
}

type rCube struct {
	levels map[int32]bool
}

func rNew(n int) *rManager {
	m := &rManager{
		unique: map[[3]int32]rRef{},
		ite:    map[[3]rRef]rRef{},
		quant:  map[rQuantKey]rRef{},
		perm:   map[rPermKey]rRef{},
		nvars:  n,
	}
	m.nodes = append(m.nodes,
		rNode{level: terminalLevel},
		rNode{level: terminalLevel},
	)
	return m
}

func (m *rManager) rlevel(r rRef) int32 { return m.nodes[r].level }

func (m *rManager) mk(level int32, lo, hi rRef) rRef {
	if lo == hi {
		return lo
	}
	key := [3]int32{level, int32(lo), int32(hi)}
	if r, ok := m.unique[key]; ok {
		return r
	}
	r := rRef(len(m.nodes))
	m.nodes = append(m.nodes, rNode{level: level, lo: lo, hi: hi})
	m.unique[key] = r
	return r
}

func (m *rManager) Var(i int) rRef {
	if i < 0 || i >= m.nvars {
		panic(fmt.Sprintf("refbdd: variable %d out of range", i))
	}
	return m.mk(int32(i), rFalse, rTrue)
}

func (m *rManager) NVar(i int) rRef { return m.mk(int32(i), rTrue, rFalse) }

func (m *rManager) ITE(f, g, h rRef) rRef {
	switch {
	case f == rTrue:
		return g
	case f == rFalse:
		return h
	case g == h:
		return g
	case g == rTrue && h == rFalse:
		return f
	}
	key := [3]rRef{f, g, h}
	if r, ok := m.ite[key]; ok {
		return r
	}
	top := m.rlevel(f)
	if l := m.rlevel(g); l < top {
		top = l
	}
	if l := m.rlevel(h); l < top {
		top = l
	}
	f0, f1 := m.cof(f, top)
	g0, g1 := m.cof(g, top)
	h0, h1 := m.cof(h, top)
	r := m.mk(top, m.ITE(f0, g0, h0), m.ITE(f1, g1, h1))
	m.ite[key] = r
	return r
}

func (m *rManager) cof(f rRef, level int32) (lo, hi rRef) {
	n := m.nodes[f]
	if n.level != level {
		return f, f
	}
	return n.lo, n.hi
}

func (m *rManager) Not(f rRef) rRef        { return m.ITE(f, rFalse, rTrue) }
func (m *rManager) And(f, g rRef) rRef     { return m.ITE(f, g, rFalse) }
func (m *rManager) Or(f, g rRef) rRef      { return m.ITE(f, rTrue, g) }
func (m *rManager) Xor(f, g rRef) rRef     { return m.ITE(f, m.Not(g), g) }
func (m *rManager) Iff(f, g rRef) rRef     { return m.ITE(f, g, m.Not(g)) }
func (m *rManager) Implies(f, g rRef) rRef { return m.ITE(f, g, rTrue) }

func (m *rManager) Cube(vars []int) int {
	levels := map[int32]bool{}
	for _, v := range vars {
		levels[int32(v)] = true
	}
	m.cubes = append(m.cubes, rCube{levels: levels})
	return len(m.cubes) - 1
}

func (m *rManager) Exists(f rRef, cubeID int) rRef {
	return m.andExists(f, rTrue, cubeID)
}

func (m *rManager) AndExists(f, g rRef, cubeID int) rRef {
	return m.andExists(f, g, cubeID)
}

func (m *rManager) andExists(f, g rRef, cubeID int) rRef {
	if f == rFalse || g == rFalse {
		return rFalse
	}
	if f == rTrue && g == rTrue {
		return rTrue
	}
	top := m.rlevel(f)
	if l := m.rlevel(g); l < top {
		top = l
	}
	if top == terminalLevel {
		return m.And(f, g)
	}
	a, b := f, g
	if a > b {
		a, b = b, a
	}
	key := rQuantKey{f: a, cube: int32(cubeID), conj: b}
	if r, ok := m.quant[key]; ok {
		return r
	}
	f0, f1 := m.cof(f, top)
	g0, g1 := m.cof(g, top)
	var r rRef
	if m.cubes[cubeID].levels[top] {
		lo := m.andExists(f0, g0, cubeID)
		if lo == rTrue {
			r = rTrue
		} else {
			r = m.Or(lo, m.andExists(f1, g1, cubeID))
		}
	} else {
		r = m.mk(top, m.andExists(f0, g0, cubeID), m.andExists(f1, g1, cubeID))
	}
	m.quant[key] = r
	return r
}

func (m *rManager) Permutation(mapping map[int]int) int {
	perm := make([]int32, m.nvars)
	for i := range perm {
		perm[i] = int32(i)
	}
	for from, to := range mapping {
		perm[from] = int32(to)
	}
	m.perms = append(m.perms, perm)
	return len(m.perms) - 1
}

func (m *rManager) Rename(f rRef, permID int) rRef {
	if f == rTrue || f == rFalse {
		return f
	}
	key := rPermKey{f: f, perm: int32(permID)}
	if r, ok := m.perm[key]; ok {
		return r
	}
	n := m.nodes[f]
	lo := m.Rename(n.lo, permID)
	hi := m.Rename(n.hi, permID)
	r := m.ITE(m.Var(int(m.perms[permID][n.level])), hi, lo)
	m.perm[key] = r
	return r
}

func (m *rManager) SatCount(f rRef) float64 {
	if f == rFalse {
		return 0
	}
	memo := map[rRef]float64{}
	var count func(r rRef) float64
	count = func(r rRef) float64 {
		if r == rFalse {
			return 0
		}
		if r == rTrue {
			return 1
		}
		if v, ok := memo[r]; ok {
			return v
		}
		n := m.nodes[r]
		c := count(n.lo)*pow2(m.rgap(n.level, n.lo)) + count(n.hi)*pow2(m.rgap(n.level, n.hi))
		memo[r] = c
		return c
	}
	top := m.rlevel(f)
	if top == terminalLevel {
		top = int32(m.nvars)
	}
	return count(f) * pow2(int(top))
}

func (m *rManager) rgap(level int32, child rRef) int {
	cl := m.rlevel(child)
	if cl == terminalLevel {
		cl = int32(m.nvars)
	}
	return int(cl - level - 1)
}

func (m *rManager) Support(f rRef) []int {
	seen := map[rRef]bool{}
	vars := map[int]bool{}
	var walk func(rRef)
	walk = func(r rRef) {
		if r <= rTrue || seen[r] {
			return
		}
		seen[r] = true
		n := m.nodes[r]
		vars[int(n.level)] = true
		walk(n.lo)
		walk(n.hi)
	}
	walk(f)
	out := make([]int, 0, len(vars))
	for v := range vars {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

func (m *rManager) Eval(f rRef, assign []bool) bool {
	for f != rTrue && f != rFalse {
		n := m.nodes[f]
		if assign[n.level] {
			f = n.hi
		} else {
			f = n.lo
		}
	}
	return f == rTrue
}
