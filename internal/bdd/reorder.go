package bdd

// Dynamic variable reordering by sifting (Rudell 1993), specialised to the
// model checker's interleaved encoding: variables form (current, next)
// pairs 2k/2k+1 that must stay adjacent, so the unit of movement is the
// pair — a "block" of two levels — and a block swap is four adjacent
// single-level swaps.
//
// Sifting runs on a private scratch graph extracted from the caller's live
// roots, not on the manager itself: the manager has no reference counts
// (it never garbage-collects), while level swaps need to know when a node
// dies, and an in-place swap without refcounts can leave dead nodes
// aliasing live triples, breaking canonicity. The scratch graph carries
// refcounts, per-level node lists and per-level unique maps; after sifting
// finds a better order, the manager is rebuilt bottom-up from the scratch
// graph (one pass, no ITE) and every root handle is remapped in place.
//
// The single-level swap mirrors CUDD's cuddSwapInPlace under this
// package's "lo edge regular" convention (CUDD's is "then arc regular"):
// when variable x at level l swaps with y at l+1, an x-node that depends
// on y is rewritten in place to test y, its two new children interned at
// l+1. The new lo child is built from lo-arc chains only — which the
// canonical form keeps regular — so the rewritten node's lo edge is
// regular by construction, and in-place rewriting preserves every parent
// handle. Rewritten nodes cannot collide with moved-up y-nodes: a
// collision would mean two distinct nodes of the source graph computed the
// same function, which canonicity rules out.
//
// Everything here is deterministic: level lists are walked in insertion
// order, per-level maps are only ever probed (never iterated), and block
// candidates are sorted with explicit tie-breaks — so a reorder is a pure
// function of the live graph, and the model checker's node statistics stay
// identical across worker counts.

// Sifting bounds. Candidate blocks are the heaviest pairs; a travelling
// block abandons a direction when the graph grows past siftMaxGrowth times
// the best size seen; the final order is applied only when it shrinks the
// graph by at least siftMinGainPct percent.
const (
	siftMaxBlocks  = 16
	siftMaxGrowth  = 1.25
	siftMinGainPct = 5
	// siftWindow bounds how far a block travels from its start position in
	// each direction. Full-travel sifting visits every position — O(blocks)
	// swaps per candidate — which on mid-sized graphs costs more than the
	// order improvement returns; a window keeps a round's cost proportional
	// to the window while still capturing the adjacent-dependency wins that
	// dominate real gains.
	siftWindow = 8
)

// snode is one scratch node. Children are refs in the manager's handle
// format (index<<1 | complement, index 0 = terminal). Free-listed nodes
// have va == -1 and reuse next as the free link.
type snode struct {
	va         int32 // variable index
	lo, hi     Ref
	ref        int32 // reference count (graph edges + root pins)
	prev, next int32 // doubly-linked level list (-1 = none)
}

// sgraph is the scratch reordering graph.
type sgraph struct {
	nodes     []snode
	head      []int32            // level → first live node, -1 = empty
	count     []int32            // level → live node count
	uniq      []map[uint64]int32 // level → (lo,hi) key → node index
	free      int32              // free-list head, -1 = none
	total     int                // live nodes, terminal excluded
	var2level []int32
	level2var []int32
	sroots    []Ref // scratch refs of the caller's roots, in order
}

func childKey(lo, hi Ref) uint64 {
	return uint64(uint32(lo))<<32 | uint64(uint32(hi))
}

// levelOf returns the current level of a live scratch node.
func (s *sgraph) levelOf(i int32) int32 { return s.var2level[s.nodes[i].va] }

// newSgraph extracts the subgraph reachable from roots. Terminal-only
// roots are fine; the terminal is index 0 with an unexpirable refcount.
func newSgraph(m *Manager, roots []*Ref) *sgraph {
	s := &sgraph{
		nodes:     make([]snode, 1, len(m.nodes)),
		head:      make([]int32, m.nvars),
		count:     make([]int32, m.nvars),
		uniq:      make([]map[uint64]int32, m.nvars),
		free:      -1,
		var2level: append([]int32(nil), m.var2level...),
		level2var: append([]int32(nil), m.level2var...),
	}
	s.nodes[0] = snode{va: -1, ref: 1 << 30, prev: -1, next: -1}
	for i := range s.head {
		s.head[i] = -1
	}
	memo := make([]int32, len(m.nodes)) // manager index → scratch index
	var conv func(r Ref) Ref
	conv = func(r Ref) Ref {
		idx := r >> 1
		c := r & 1
		if idx == 0 {
			return c
		}
		if si := memo[idx]; si != 0 {
			return Ref(si)<<1 | c
		}
		n := m.nodes[idx]
		lo := conv(n.lo)
		hi := conv(n.hi)
		va := m.level2var[n.level]
		si := s.alloc(va, lo, hi)
		s.link(n.level, si)
		s.uniqAt(n.level)[childKey(lo, hi)] = si
		memo[idx] = si
		return Ref(si)<<1 | c
	}
	for _, rp := range roots {
		sr := conv(*rp)
		s.nodes[sr>>1].ref++ // pin
		s.sroots = append(s.sroots, sr)
	}
	return s
}

func (s *sgraph) uniqAt(level int32) map[uint64]int32 {
	if s.uniq[level] == nil {
		s.uniq[level] = map[uint64]int32{}
	}
	return s.uniq[level]
}

// alloc creates a live node (refcount 0 — the caller links it) and
// increments its children. It does not touch lists or unique maps.
func (s *sgraph) alloc(va int32, lo, hi Ref) int32 {
	var i int32
	if s.free >= 0 {
		i = s.free
		s.free = s.nodes[i].next
		s.nodes[i] = snode{va: va, lo: lo, hi: hi}
	} else {
		i = int32(len(s.nodes))
		s.nodes = append(s.nodes, snode{va: va, lo: lo, hi: hi})
	}
	s.nodes[lo>>1].ref++
	s.nodes[hi>>1].ref++
	s.total++
	return i
}

// link prepends a node to a level list.
func (s *sgraph) link(level int32, i int32) {
	n := &s.nodes[i]
	n.prev = -1
	n.next = s.head[level]
	if n.next >= 0 {
		s.nodes[n.next].prev = i
	}
	s.head[level] = i
	s.count[level]++
}

// unlink removes a node from a level list.
func (s *sgraph) unlink(level int32, i int32) {
	n := &s.nodes[i]
	if n.prev >= 0 {
		s.nodes[n.prev].next = n.next
	} else {
		s.head[level] = n.next
	}
	if n.next >= 0 {
		s.nodes[n.next].prev = n.prev
	}
	s.count[level]--
}

// decRef drops one reference; a node dying at refcount zero is removed
// from its level and its children are dropped recursively.
func (s *sgraph) decRef(r Ref) {
	i := r >> 1
	if i == 0 {
		return
	}
	n := &s.nodes[i]
	n.ref--
	if n.ref > 0 {
		return
	}
	level := s.levelOf(int32(i))
	s.unlink(level, int32(i))
	delete(s.uniq[level], childKey(n.lo, n.hi))
	lo, hi := n.lo, n.hi
	n.va = -1
	n.next = s.free
	s.free = int32(i)
	s.total--
	s.decRef(lo)
	s.decRef(hi)
}

// mkAt interns (va, lo, hi) at the given level, folding a complemented lo
// into the result polarity. The caller owns the returned reference.
func (s *sgraph) mkAt(level int32, va int32, lo, hi Ref) Ref {
	if lo == hi {
		return lo
	}
	var c Ref
	if lo&1 != 0 {
		lo ^= 1
		hi ^= 1
		c = 1
	}
	u := s.uniqAt(level)
	key := childKey(lo, hi)
	if i, ok := u[key]; ok {
		return Ref(i)<<1 | c
	}
	i := s.alloc(va, lo, hi)
	s.link(level, i)
	u[key] = i
	return Ref(i)<<1 | c
}

// cofactorsAt splits a child reference at the given level.
func (s *sgraph) cofactorsAt(r Ref, level int32) (lo, hi Ref) {
	n := &s.nodes[r>>1]
	if r>>1 == 0 || s.var2level[n.va] != level {
		return r, r
	}
	c := r & 1
	return n.lo ^ c, n.hi ^ c
}

// swapLevel exchanges the variables at levels l and l+1 in place.
func (s *sgraph) swapLevel(l int32) {
	xv := s.level2var[l]
	yv := s.level2var[l+1]
	// Detach the x list; y-nodes move up wholesale — their children live
	// strictly below l+1, so neither structure nor unique keys change.
	xh := s.head[l]
	s.head[l] = s.head[l+1]
	s.head[l+1] = -1
	s.count[l] = s.count[l+1]
	s.count[l+1] = 0
	uy := s.uniq[l+1]
	ux := s.uniq[l]
	if ux != nil {
		clear(ux)
	}
	s.uniq[l] = uy
	s.uniq[l+1] = ux
	// From here on every level computation uses the swapped mapping.
	s.var2level[xv] = l + 1
	s.var2level[yv] = l
	s.level2var[l] = yv
	s.level2var[l+1] = xv

	// Pass 1: sink every x-node independent of y to level l+1 first, so
	// that pass 2's mkAt finds them in the level's unique map and shares
	// them. Interleaving the passes would let mkAt intern a fresh node whose
	// triple a later-sinking sibling then duplicates — two live nodes with
	// one triple, canonicity gone. Interacting nodes are parked on a
	// temporary list threaded through next.
	rewrite := int32(-1)
	for i := xh; i >= 0; {
		next := s.nodes[i].next
		n := &s.nodes[i]
		lo, hi := n.lo, n.hi
		loY := lo>>1 != 0 && s.levelOf(int32(lo>>1)) == l
		hiY := hi>>1 != 0 && s.levelOf(int32(hi>>1)) == l
		if !loY && !hiY {
			s.link(l+1, i)
			s.uniqAt(l + 1)[childKey(lo, hi)] = i
		} else {
			n.next = rewrite
			rewrite = i
		}
		i = next
	}
	// Pass 2: f = ite(y, ite(x,f11,f01), ite(x,f10,f00)) — rebuild each
	// interacting node in place testing y first. The lo-cofactor chain
	// (f00, f10) only follows stored-regular lo arcs into mkAt's lo
	// argument, so newLo comes out regular and the in-place rewrite keeps
	// the canonical form.
	for i := rewrite; i >= 0; {
		next := s.nodes[i].next
		n := &s.nodes[i]
		lo, hi := n.lo, n.hi
		f00, f01 := s.cofactorsAt(lo, l)
		f10, f11 := s.cofactorsAt(hi, l)
		newLo := s.mkAt(l+1, xv, f00, f10)
		newHi := s.mkAt(l+1, xv, f01, f11)
		s.nodes[newLo>>1].ref++
		s.nodes[newHi>>1].ref++
		// n may have been invalidated by appends inside mkAt.
		n = &s.nodes[i]
		n.va = yv
		n.lo = newLo
		n.hi = newHi
		s.link(l, i)
		u := s.uniqAt(l)
		key := childKey(newLo, newHi)
		if _, ok := u[key]; ok {
			panic("bdd: reorder produced a duplicate node — canonicity violated")
		}
		u[key] = i
		s.decRef(lo)
		s.decRef(hi)
		i = next
	}
}

// swapBlock exchanges the adjacent variable pairs at block positions p and
// p+1 (levels 2p..2p+3) with four single-level swaps, preserving the
// within-pair order.
func (s *sgraph) swapBlock(p int32) {
	l := 2 * p
	s.swapLevel(l + 1)
	s.swapLevel(l)
	s.swapLevel(l + 2)
	s.swapLevel(l + 1)
}

// blockWeight is the live node population of the pair at block position p.
func (s *sgraph) blockWeight(p int32) int32 {
	return s.count[2*p] + s.count[2*p+1]
}

// Reorder sifts the variable order toward a smaller graph and, on success,
// rebuilds the manager under the new order, remapping every *root in
// place. Variables are moved as interleaved (2k, 2k+1) pairs — the model
// checker's current/next encoding — so the relational-product structure
// survives. Only the functions reachable from roots survive a rebuild;
// they are the caller's full live set by contract. Returns whether a new
// order was applied (false: the manager is untouched).
func (m *Manager) Reorder(roots []*Ref) bool {
	if m.nvars < 4 || m.nvars%2 != 0 {
		return false
	}
	// Pair alignment: var 2k sits on an even level directly above 2k+1.
	// Guaranteed by New/Reset and preserved by block swaps; an arbitrary
	// SetOrder could break it, in which case sifting does not apply.
	for k := 0; k < m.nvars/2; k++ {
		le := m.var2level[2*k]
		if le%2 != 0 || m.var2level[2*k+1] != le+1 {
			return false
		}
	}
	s := newSgraph(m, roots)
	orig := s.total
	if orig == 0 {
		return false
	}
	nblocks := int32(m.nvars / 2)

	// Candidate blocks, heaviest first (ties: lower variable pair first).
	cand := make([]int32, 0, nblocks)
	for k := int32(0); k < nblocks; k++ {
		if s.blockWeight(s.var2level[2*k]/2) > 0 {
			cand = append(cand, k)
		}
	}
	weight := func(k int32) int32 { return s.blockWeight(s.var2level[2*k] / 2) }
	sortInt32(cand, func(a, b int32) bool {
		wa, wb := weight(a), weight(b)
		if wa != wb {
			return wa > wb
		}
		return a < b
	})
	if len(cand) > siftMaxBlocks {
		cand = cand[:siftMaxBlocks]
	}

	for _, k := range cand {
		s.siftBlock(k, nblocks)
	}

	if s.total > orig-max(1, orig*siftMinGainPct/100) {
		return false // not worth a rebuild; keep the manager untouched
	}
	m.applyOrder(s, roots)
	return true
}

// siftBlock moves variable pair k through the block positions within
// siftWindow of its start and settles it at the best one seen, bounding
// intermediate growth.
func (s *sgraph) siftBlock(k, nblocks int32) {
	pos := s.var2level[2*k] / 2
	lo := max(int32(0), pos-siftWindow)
	hi := min(nblocks-1, pos+siftWindow)
	best, bestTotal := pos, s.total
	grown := func() bool {
		return float64(s.total) > siftMaxGrowth*float64(bestTotal)
	}
	// Travel toward the nearer window edge first — fewer swaps before the
	// bound can cut the trip short.
	downFirst := hi-pos <= pos-lo
	for pass := 0; pass < 2; pass++ {
		if downFirst == (pass == 0) {
			for pos < hi {
				s.swapBlock(pos)
				pos++
				if s.total < bestTotal {
					best, bestTotal = pos, s.total
				}
				if grown() {
					break
				}
			}
		} else {
			for pos > lo {
				s.swapBlock(pos - 1)
				pos--
				if s.total < bestTotal {
					best, bestTotal = pos, s.total
				}
				if grown() {
					break
				}
			}
		}
	}
	for pos < best {
		s.swapBlock(pos)
		pos++
	}
	for pos > best {
		s.swapBlock(pos - 1)
		pos--
	}
}

// applyOrder rebuilds the manager from the sifted scratch graph: fresh
// tables under the new order, cubes' level views recomputed, registered
// permutations untouched (they are variable-based), and every root handle
// rewritten to the rebuilt function.
func (m *Manager) applyOrder(s *sgraph, roots []*Ref) {
	if len(m.nodes) > m.peak {
		m.peak = len(m.nodes)
	}
	limit := m.limit // survive the rebuild; s.total < current count ≤ limit
	m.nodes = m.nodes[:1]
	m.unique.reset(s.total + m.nvars + 1)
	m.ite.reset(1 << 11)
	m.quant.reset(1 << 9)
	m.perm.reset(1 << 9)
	copy(m.var2level, s.var2level)
	copy(m.level2var, s.level2var)
	m.internVars()
	for i := range m.cubes {
		m.cubes[i].member = m.cubeLevels(m.cubes[i].vars, m.cubes[i].member)
	}
	m.limit = limit

	memo := make([]Ref, len(s.nodes))
	for i := range memo {
		memo[i] = -1
	}
	memo[0] = True
	var conv func(r Ref) Ref
	conv = func(r Ref) Ref {
		idx := r >> 1
		c := r & 1
		if memo[idx] >= 0 {
			return memo[idx] ^ c
		}
		n := s.nodes[idx]
		lo := conv(n.lo)
		hi := conv(n.hi)
		// Scratch lo edges are regular, so mk cannot fold a complement
		// here and the memoised handle is the node's regular polarity.
		nr := m.mk(m.var2level[n.va], lo, hi)
		memo[idx] = nr
		return nr ^ c
	}
	for i, rp := range roots {
		*rp = conv(s.sroots[i])
	}
}

// sortInt32 is insertion sort over a small candidate slice (deterministic,
// no allocation).
func sortInt32(s []int32, less func(a, b int32) bool) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && less(s[j], s[j-1]); j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
