package bdd

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTerminalsAndVars(t *testing.T) {
	m := New(4)
	x := m.Var(0)
	if x == True || x == False {
		t.Fatal("variable is a terminal")
	}
	if m.Var(0) != x {
		t.Error("hash consing broken: Var(0) not canonical")
	}
	if m.Not(m.Not(x)) != x {
		t.Error("double negation must be identity")
	}
	if m.NVar(0) != m.Not(x) {
		t.Error("NVar must equal Not(Var)")
	}
}

func TestBooleanAlgebraIdentities(t *testing.T) {
	m := New(3)
	a, b, c := m.Var(0), m.Var(1), m.Var(2)
	cases := []struct {
		name string
		x, y Ref
	}{
		{"and-comm", m.And(a, b), m.And(b, a)},
		{"or-comm", m.Or(a, b), m.Or(b, a)},
		{"and-assoc", m.And(a, m.And(b, c)), m.And(m.And(a, b), c)},
		{"demorgan", m.Not(m.And(a, b)), m.Or(m.Not(a), m.Not(b))},
		{"distrib", m.And(a, m.Or(b, c)), m.Or(m.And(a, b), m.And(a, c))},
		{"xor-def", m.Xor(a, b), m.Or(m.And(a, m.Not(b)), m.And(m.Not(a), b))},
		{"absorb", m.Or(a, m.And(a, b)), a},
		{"excluded-middle", m.Or(a, m.Not(a)), True},
		{"contradiction", m.And(a, m.Not(a)), False},
		{"iff", m.Iff(a, b), m.Not(m.Xor(a, b))},
		{"implies", m.Implies(a, b), m.Or(m.Not(a), b)},
	}
	for _, tc := range cases {
		if tc.x != tc.y {
			t.Errorf("%s: refs differ (%d vs %d)", tc.name, tc.x, tc.y)
		}
	}
}

// Property: BDD operations agree with truth-table evaluation on random
// 5-variable formulas.
func TestQuickAgainstTruthTables(t *testing.T) {
	const nvars = 5
	type formula struct {
		eval func(a []bool) bool
		ref  Ref
	}
	m := New(nvars)
	rng := rand.New(rand.NewSource(99))
	var build func(depth int) formula
	build = func(depth int) formula {
		if depth == 0 || rng.Intn(3) == 0 {
			i := rng.Intn(nvars)
			return formula{eval: func(a []bool) bool { return a[i] }, ref: m.Var(i)}
		}
		l := build(depth - 1)
		r := build(depth - 1)
		switch rng.Intn(4) {
		case 0:
			return formula{eval: func(a []bool) bool { return l.eval(a) && r.eval(a) }, ref: m.And(l.ref, r.ref)}
		case 1:
			return formula{eval: func(a []bool) bool { return l.eval(a) || r.eval(a) }, ref: m.Or(l.ref, r.ref)}
		case 2:
			return formula{eval: func(a []bool) bool { return l.eval(a) != r.eval(a) }, ref: m.Xor(l.ref, r.ref)}
		default:
			return formula{eval: func(a []bool) bool { return !l.eval(a) }, ref: m.Not(l.ref)}
		}
	}
	for trial := 0; trial < 60; trial++ {
		f := build(4)
		for bits := 0; bits < 1<<nvars; bits++ {
			assign := make([]bool, nvars)
			for i := range assign {
				assign[i] = bits&(1<<uint(i)) != 0
			}
			if m.Eval(f.ref, assign) != f.eval(assign) {
				t.Fatalf("trial %d: mismatch at assignment %05b", trial, bits)
			}
		}
	}
}

func TestExists(t *testing.T) {
	m := New(3)
	a, b := m.Var(0), m.Var(1)
	f := m.And(a, b)
	cb := m.Cube([]int{0})
	// ∃a (a ∧ b) = b
	if got := m.Exists(f, cb); got != b {
		t.Errorf("∃a(a∧b) != b")
	}
	// ∃a (a ∧ ¬a) = false
	if got := m.Exists(m.And(a, m.Not(a)), cb); got != False {
		t.Error("∃a(false) != false")
	}
	// ∃a (a ∨ b) = true
	if got := m.Exists(m.Or(a, b), cb); got != True {
		t.Error("∃a(a∨b) != true")
	}
}

func TestAndExistsEqualsComposition(t *testing.T) {
	const nvars = 6
	m := New(nvars)
	rng := rand.New(rand.NewSource(7))
	randomFormula := func() Ref {
		f := m.Var(rng.Intn(nvars))
		for i := 0; i < 6; i++ {
			g := m.Lit(rng.Intn(nvars), rng.Intn(2) == 0)
			switch rng.Intn(3) {
			case 0:
				f = m.And(f, g)
			case 1:
				f = m.Or(f, g)
			default:
				f = m.Xor(f, g)
			}
		}
		return f
	}
	for trial := 0; trial < 50; trial++ {
		f, g := randomFormula(), randomFormula()
		vars := []int{rng.Intn(nvars), rng.Intn(nvars)}
		cb := m.Cube(vars)
		direct := m.AndExists(f, g, cb)
		composed := m.Exists(m.And(f, g), cb)
		if direct != composed {
			t.Fatalf("trial %d: AndExists != Exists∘And", trial)
		}
	}
}

func TestRename(t *testing.T) {
	m := New(4)
	a, b := m.Var(0), m.Var(1)
	f := m.And(a, m.Not(b))
	p := m.Permutation(map[int]int{0: 2, 1: 3})
	g := m.Rename(f, p)
	want := m.And(m.Var(2), m.Not(m.Var(3)))
	if g != want {
		t.Error("rename produced wrong function")
	}
	// Renaming twice with the inverse returns the original.
	inv := m.Permutation(map[int]int{2: 0, 3: 1})
	if m.Rename(g, inv) != f {
		t.Error("inverse rename is not identity")
	}
}

func TestSatOne(t *testing.T) {
	m := New(4)
	f := m.And(m.Var(1), m.Not(m.Var(3)))
	assign, ok := m.SatOne(f)
	if !ok {
		t.Fatal("satisfiable function reported unsat")
	}
	if assign[1] != 1 || assign[3] != 0 {
		t.Errorf("assignment %v does not satisfy f", assign)
	}
	if _, ok := m.SatOne(False); ok {
		t.Error("False reported satisfiable")
	}
	full := make([]bool, 4)
	for i, v := range assign {
		full[i] = v == 1
	}
	if !m.Eval(f, full) {
		t.Error("SatOne assignment does not evaluate to true")
	}
}

func TestSatCount(t *testing.T) {
	m := New(4)
	a, b := m.Var(0), m.Var(1)
	cases := []struct {
		f    Ref
		want float64
	}{
		{True, 16},
		{False, 0},
		{a, 8},
		{m.And(a, b), 4},
		{m.Or(a, b), 12},
		{m.Xor(a, b), 8},
	}
	for i, tc := range cases {
		if got := m.SatCount(tc.f); got != tc.want {
			t.Errorf("case %d: SatCount = %v, want %v", i, got, tc.want)
		}
	}
}

func TestSupport(t *testing.T) {
	m := New(5)
	f := m.And(m.Var(1), m.Or(m.Var(3), m.Not(m.Var(4))))
	got := m.Support(f)
	want := []int{1, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("support = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("support = %v, want %v", got, want)
		}
	}
}

func TestCanonicityProperty(t *testing.T) {
	// Two different constructions of the same function share a ref.
	f := func(x, y, z uint8) bool {
		m := New(3)
		a, b, c := m.Var(0), m.Var(1), m.Var(2)
		lhs := m.ITE(a, m.And(b, c), m.Or(b, c))
		rhs := m.Or(m.And(a, m.And(b, c)), m.And(m.Not(a), m.Or(b, c)))
		return lhs == rhs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Error(err)
	}
}

func TestNodeGrowthAccounting(t *testing.T) {
	m := New(8)
	before := m.NodeCount()
	f := True
	for i := 0; i < 8; i++ {
		f = m.And(f, m.Var(i))
	}
	if m.NodeCount() <= before {
		t.Error("node count did not grow")
	}
	if m.MemoryBytes() <= 0 {
		t.Error("memory estimate must be positive")
	}
}
