package bdd

import (
	"math"
	"math/rand"
	"testing"
)

// Differential property tests: drive the complement-edge kernel and the
// map-based reference kernel (refkernel_test.go) through the same random
// operation tape and require identical semantics at every step — Eval must
// agree on every assignment, SatCount and Support must match, and the
// quantification/renaming operators must commute with the correspondence.

const propVars = 8

// pair tracks the same boolean function in both kernels.
type pair struct {
	n Ref  // new kernel
	o rRef // reference kernel
}

// checkPair verifies the two handles denote the same function by exhaustive
// evaluation over all 2^propVars assignments, plus SatCount and Support.
func checkPair(t *testing.T, m *Manager, r *rManager, p pair, step int) {
	t.Helper()
	assign := make([]bool, propVars)
	for bits := 0; bits < 1<<propVars; bits++ {
		for i := range assign {
			assign[i] = bits>>i&1 == 1
		}
		if got, want := m.Eval(p.n, assign), r.Eval(p.o, assign); got != want {
			t.Fatalf("step %d: Eval(%v) = %v, reference says %v", step, assign, got, want)
		}
	}
	if got, want := m.SatCount(p.n), r.SatCount(p.o); math.Abs(got-want) > 0.5 {
		t.Fatalf("step %d: SatCount = %v, reference says %v", step, got, want)
	}
	gs, ws := m.Support(p.n), r.Support(p.o)
	if len(gs) != len(ws) {
		t.Fatalf("step %d: Support = %v, reference says %v", step, gs, ws)
	}
	for i := range gs {
		if gs[i] != ws[i] {
			t.Fatalf("step %d: Support = %v, reference says %v", step, gs, ws)
		}
	}
}

func TestKernelMatchesReferenceOnRandomFormulas(t *testing.T) {
	rng := rand.New(rand.NewSource(423817))
	rounds := 25
	steps := 60
	if testing.Short() {
		rounds = 6
	}
	for round := 0; round < rounds; round++ {
		m := New(propVars)
		r := rNew(propVars)
		// Shared quantification cube and a renaming that swaps the two
		// halves of the variable order (the current/next-state pattern the
		// model checker uses).
		cubeVars := []int{}
		for v := 0; v < propVars; v++ {
			if rng.Intn(2) == 0 {
				cubeVars = append(cubeVars, v)
			}
		}
		cubeN := m.Cube(cubeVars)
		cubeO := r.Cube(cubeVars)
		mapping := map[int]int{}
		for v := 0; v < propVars/2; v++ {
			mapping[v] = v + propVars/2
			mapping[v+propVars/2] = v
		}
		permN := m.Permutation(mapping)
		permO := r.Permutation(mapping)

		pool := []pair{
			{True, rTrue},
			{False, rFalse},
		}
		for v := 0; v < propVars; v++ {
			pool = append(pool,
				pair{m.Var(v), r.Var(v)},
				pair{m.NVar(v), r.NVar(v)})
		}
		pick := func() pair { return pool[rng.Intn(len(pool))] }

		for step := 0; step < steps; step++ {
			a, b, c := pick(), pick(), pick()
			var p pair
			switch rng.Intn(10) {
			case 0:
				p = pair{m.Not(a.n), r.Not(a.o)}
			case 1:
				p = pair{m.And(a.n, b.n), r.And(a.o, b.o)}
			case 2:
				p = pair{m.Or(a.n, b.n), r.Or(a.o, b.o)}
			case 3:
				p = pair{m.Xor(a.n, b.n), r.Xor(a.o, b.o)}
			case 4:
				p = pair{m.Iff(a.n, b.n), r.Iff(a.o, b.o)}
			case 5:
				p = pair{m.Implies(a.n, b.n), r.Implies(a.o, b.o)}
			case 6:
				p = pair{m.ITE(a.n, b.n, c.n), r.ITE(a.o, b.o, c.o)}
			case 7:
				p = pair{m.Exists(a.n, cubeN), r.Exists(a.o, cubeO)}
			case 8:
				p = pair{m.AndExists(a.n, b.n, cubeN), r.AndExists(a.o, b.o, cubeO)}
			case 9:
				p = pair{m.Rename(a.n, permN), r.Rename(a.o, permO)}
			}
			checkPair(t, m, r, p, step)
			pool = append(pool, p)
		}
		// Complement edges should at most match the reference node count
		// (typically about half, since f and ¬f share all nodes).
		if m.NodeCount() > len(r.nodes)+1 {
			t.Errorf("round %d: new kernel has %d nodes, reference only %d — sharing lost",
				round, m.NodeCount(), len(r.nodes))
		}
	}
}

// TestSatOneAgainstEval checks that every assignment SatOne produces indeed
// satisfies the function (with don't-cares filled both ways).
func TestSatOneAgainstEval(t *testing.T) {
	rng := rand.New(rand.NewSource(99173))
	m := New(propVars)
	pool := []Ref{True, False}
	for v := 0; v < propVars; v++ {
		pool = append(pool, m.Var(v), m.NVar(v))
	}
	for step := 0; step < 300; step++ {
		a := pool[rng.Intn(len(pool))]
		b := pool[rng.Intn(len(pool))]
		c := pool[rng.Intn(len(pool))]
		f := m.ITE(a, b, c)
		pool = append(pool, f)
		assign, ok := m.SatOne(f)
		if !ok {
			if f != False {
				t.Fatalf("step %d: SatOne says unsat but f != False", step)
			}
			continue
		}
		// Fill don't-cares randomly a few times; all must satisfy f.
		for try := 0; try < 4; try++ {
			full := make([]bool, propVars)
			for i, v := range assign {
				switch v {
				case 1:
					full[i] = true
				case 0:
					full[i] = false
				default:
					full[i] = rng.Intn(2) == 1
				}
			}
			if !m.Eval(f, full) {
				t.Fatalf("step %d: SatOne assignment %v (filled %v) does not satisfy f",
					step, assign, full)
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Complement-edge structural invariants

// TestCanonicalLoEdgesRegular walks every stored node and checks the kernel's
// canonical-form invariant: stored lo edges are never complemented, children
// are strictly below their parent in the order, and no duplicate triples
// exist (hash consing is airtight).
func TestCanonicalLoEdgesRegular(t *testing.T) {
	m := buildBusyManager(t)
	seen := map[[3]int32]bool{}
	for i := 1; i < len(m.nodes); i++ {
		n := m.nodes[i]
		if n.lo&1 != 0 {
			t.Errorf("node %d: stored lo edge %d is complemented", i, n.lo)
		}
		if n.lo == n.hi {
			t.Errorf("node %d: redundant test (lo == hi == %d)", i, n.lo)
		}
		if m.level(n.lo) <= n.level || m.level(n.hi) <= n.level {
			t.Errorf("node %d: child level not strictly below %d", i, n.level)
		}
		key := [3]int32{n.level, int32(n.lo), int32(n.hi)}
		if seen[key] {
			t.Errorf("node %d: duplicate triple %v — unique table leaked", i, key)
		}
		seen[key] = true
	}
}

// TestNotIsFree checks the headline complement-edge property: negation
// allocates no nodes, is an involution, and Var/NVar share a node.
func TestNotIsFree(t *testing.T) {
	m := New(6)
	f := m.And(m.Var(0), m.Or(m.Var(1), m.NVar(2)))
	before := m.NodeCount()
	g := m.Not(f)
	if m.NodeCount() != before {
		t.Errorf("Not allocated %d nodes; complement edges should make it free",
			m.NodeCount()-before)
	}
	if m.Not(g) != f {
		t.Error("Not is not an involution")
	}
	if g == f {
		t.Error("Not returned its argument")
	}
	if m.Var(3)>>1 != m.NVar(3)>>1 {
		t.Error("Var and NVar do not share their node")
	}
	if m.Not(True) != False || m.Not(False) != True {
		t.Error("terminal complements wrong")
	}
}

// TestMemoryBytesExact recomputes the footprint from first principles and
// requires MemoryBytes to match exactly (it is no longer an estimate).
func TestMemoryBytesExact(t *testing.T) {
	m := buildBusyManager(t)
	want := int64(cap(m.nodes))*nodeBytes +
		int64(len(m.unique.slots))*4 +
		int64(len(m.ite.entries))*16 +
		int64(len(m.quant.entries))*16 +
		int64(len(m.perm.entries))*16 +
		int64(cap(m.varRef))*4
	for _, c := range m.cubes {
		want += int64(len(c.member)) + int64(len(c.vars))*4
	}
	for _, p := range m.perms {
		want += int64(len(p)) * 4
	}
	if got := m.MemoryBytes(); got != want {
		t.Errorf("MemoryBytes = %d, recomputed %d", got, want)
	}
	if m.MemoryBytes() <= 0 {
		t.Error("MemoryBytes must be positive")
	}
}

// buildBusyManager exercises every operator enough to populate all tables
// past their initial capacities.
func buildBusyManager(t *testing.T) *Manager {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	m := New(12)
	cube := m.Cube([]int{0, 2, 4, 6, 8, 10})
	perm := m.Permutation(map[int]int{0: 1, 1: 0, 4: 5, 5: 4})
	pool := []Ref{True, False}
	for v := 0; v < 12; v++ {
		pool = append(pool, m.Var(v), m.NVar(v))
	}
	for i := 0; i < 400; i++ {
		a := pool[rng.Intn(len(pool))]
		b := pool[rng.Intn(len(pool))]
		c := pool[rng.Intn(len(pool))]
		f := m.ITE(a, b, c)
		if i%5 == 0 {
			f = m.AndExists(f, b, cube)
		}
		if i%7 == 0 {
			f = m.Rename(f, perm)
		}
		pool = append(pool, f)
	}
	return m
}
