package bdd

import "testing"

// Microbenchmarks for the kernel hot paths. Each iteration builds a fresh
// Manager so the unique-table and cache growth cost is included — that is
// what the model checker pays, since every CheckSymbolic run starts cold.

// buildParity builds the parity function of n variables — the classic
// worst case for node count without complement edges, best case with them.
func buildParity(m *Manager, n int) Ref {
	f := False
	for v := 0; v < n; v++ {
		f = m.Xor(f, m.Var(v))
	}
	return f
}

func BenchmarkBDDXorChain(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := New(64)
		if f := buildParity(m, 64); f == True || f == False {
			b.Fatal("parity collapsed")
		}
	}
}

func BenchmarkBDDAndOrTree(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := New(64)
		f := True
		for v := 0; v+1 < 64; v += 2 {
			f = m.And(f, m.Or(m.Var(v), m.NVar(v+1)))
		}
		if f == False {
			b.Fatal("conjunction collapsed")
		}
	}
}

// BenchmarkBDDRelProduct mimics one symbolic image step: current-state vars
// at even levels, next-state at odd, a bit-shift transition relation, and
// AndExists + Rename exactly like mc's reachability loop.
func BenchmarkBDDRelProduct(b *testing.B) {
	const bits = 20
	for i := 0; i < b.N; i++ {
		m := New(2 * bits)
		cur := func(j int) Ref { return m.Var(2 * j) }
		next := func(j int) Ref { return m.Var(2*j + 1) }
		trans := True
		for j := 0; j < bits; j++ {
			src := False
			if j+1 < bits {
				src = cur(j + 1)
			}
			trans = m.And(trans, m.Iff(next(j), src))
		}
		curVars := make([]int, bits)
		mapping := map[int]int{}
		for j := 0; j < bits; j++ {
			curVars[j] = 2 * j
			mapping[2*j+1] = 2 * j
		}
		cube := m.Cube(curVars)
		perm := m.Permutation(mapping)
		state := buildEvenParity(m, bits)
		for step := 0; step < 8; step++ {
			img := m.AndExists(state, trans, cube)
			state = m.Or(state, m.Rename(img, perm))
		}
		if state == False {
			b.Fatal("reachable set collapsed")
		}
	}
}

func buildEvenParity(m *Manager, bits int) Ref {
	f := False
	for j := 0; j < bits; j++ {
		f = m.Xor(f, m.Var(2*j))
	}
	return m.Not(f)
}

// BenchmarkBDDNegationHeavy stresses Not-heavy formulas (De Morgan ladders):
// with complement edges every Not is a bit flip; before, each was a full
// ITE traversal.
func BenchmarkBDDNegationHeavy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := New(48)
		f := m.Var(0)
		for v := 1; v < 48; v++ {
			f = m.Not(m.And(m.Not(f), m.Not(m.Var(v))))
		}
		if f == True || f == False {
			b.Fatal("ladder collapsed")
		}
	}
}

func BenchmarkBDDSatCount(b *testing.B) {
	m := New(40)
	f := buildParity(m, 40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := m.SatCount(f); got <= 0 {
			b.Fatal("SatCount returned", got)
		}
	}
}
