package bdd

import "sync"

// Pool recycles managers across model-checker queries. A fresh manager's
// dominant startup cost is not allocation itself but the growth churn that
// follows — every query re-grows the unique table and operation caches
// from their seed sizes through a ladder of rehash/copy cycles. A pooled
// manager keeps the backing arrays of its previous lease (right-sized by
// Reset's adaptive policy), so a steady stream of similar queries runs
// entirely without table growth.
//
// Get returns a manager observationally identical to New(n): everything a
// query can compute from it — verdicts, node counts, Footprint — is
// independent of which (if any) previous leases warmed it. Only
// MemoryBytes sees the recycled capacities, which is why it is classified
// volatile in observability. A manager abandoned after a LimitError panic
// may be Put back: Reset only consults array lengths and capacities, both
// of which stay consistent because mkRaw checks the budget before
// mutating.
//
// The zero Pool is ready to use. Pools are safe for concurrent use; the
// managers leased from them remain single-threaded.
type Pool struct {
	p sync.Pool
}

// Get leases a manager for n variables, recycling a previous one when
// available.
func (p *Pool) Get(n int) *Manager {
	if v := p.p.Get(); v != nil {
		m := v.(*Manager)
		m.Reset(n)
		return m
	}
	return New(n)
}

// Put returns a manager to the pool. The caller must drop every Ref into
// it first; the next Get resets all tables.
func (p *Pool) Put(m *Manager) {
	if m != nil {
		p.p.Put(m)
	}
}
