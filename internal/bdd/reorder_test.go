package bdd

import (
	"math"
	"math/rand"
	"testing"
)

// truthTable snapshots f over all 2^nvars assignments.
func truthTable(m *Manager, f Ref, nvars int) []bool {
	out := make([]bool, 1<<nvars)
	assign := make([]bool, nvars)
	for bits := range out {
		for i := range assign {
			assign[i] = bits>>i&1 == 1
		}
		out[bits] = m.Eval(f, assign)
	}
	return out
}

// buildRandomRoots drives a manager through a random op tape and returns the
// surviving functions. Deterministic given the seed.
func buildRandomRoots(m *Manager, seed int64, nvars, steps int) []Ref {
	rng := rand.New(rand.NewSource(seed))
	cubeID := m.Cube([]int{0, 3})
	permID := m.Permutation(map[int]int{0: 2, 2: 0, 1: 3, 3: 1})
	pool := []Ref{True, False}
	for v := 0; v < nvars; v++ {
		pool = append(pool, m.Var(v), m.NVar(v))
	}
	for i := 0; i < steps; i++ {
		a := pool[rng.Intn(len(pool))]
		b := pool[rng.Intn(len(pool))]
		c := pool[rng.Intn(len(pool))]
		var f Ref
		switch rng.Intn(6) {
		case 0:
			f = m.And(a, b)
		case 1:
			f = m.Or(a, b)
		case 2:
			f = m.Xor(a, b)
		case 3:
			f = m.ITE(a, b, c)
		case 4:
			f = m.AndExists(a, b, cubeID)
		case 5:
			f = m.Rename(a, permID)
		}
		pool = append(pool, f)
	}
	return pool[len(pool)-8:]
}

// TestReorderPreservesSemantics: whatever order sifting settles on, every
// root must denote the same boolean function, and the pair-alignment
// invariant must survive so a later reorder still applies.
func TestReorderPreservesSemantics(t *testing.T) {
	const nvars = 8
	for seed := int64(1); seed <= 20; seed++ {
		m := New(nvars)
		roots := buildRandomRoots(m, seed, nvars, 50)
		before := make([][]bool, len(roots))
		counts := make([]float64, len(roots))
		for i, f := range roots {
			before[i] = truthTable(m, f, nvars)
			counts[i] = m.SatCount(f)
		}
		ptrs := make([]*Ref, len(roots))
		for i := range roots {
			ptrs[i] = &roots[i]
		}
		applied := m.Reorder(ptrs)
		for i, f := range roots {
			after := truthTable(m, f, nvars)
			for bits := range after {
				if after[bits] != before[i][bits] {
					t.Fatalf("seed %d (applied=%v): root %d changed at assignment %b",
						seed, applied, i, bits)
				}
			}
			if got := m.SatCount(f); math.Abs(got-counts[i]) > 0.5 {
				t.Fatalf("seed %d: root %d SatCount %v, was %v", seed, i, got, counts[i])
			}
		}
		for k := 0; k < nvars/2; k++ {
			le := m.var2level[2*k]
			if le%2 != 0 || m.var2level[2*k+1] != le+1 {
				t.Fatalf("seed %d: pair %d broke alignment: levels %d,%d",
					seed, k, le, m.var2level[2*k+1])
			}
		}
		// The rebuilt manager must still be a working kernel: combine the
		// roots and cross-check against a fresh manager under the new order.
		comb := m.AndN(m.Or(roots[0], roots[1]), m.Xor(roots[2], roots[3]))
		fresh := New(nvars)
		fresh.SetOrder(m.CurrentOrder())
		froots := buildRandomRoots(fresh, seed, nvars, 50)
		fcomb := fresh.AndN(fresh.Or(froots[0], froots[1]), fresh.Xor(froots[2], froots[3]))
		ct, ft := truthTable(m, comb, nvars), truthTable(fresh, fcomb, nvars)
		for bits := range ct {
			if ct[bits] != ft[bits] {
				t.Fatalf("seed %d: post-reorder ops diverge from fresh manager at %b", seed, bits)
			}
		}
	}
}

// TestReorderShrinksMismatchedPairs forces the classic win: an OR of
// conjunctions whose operands sit in distant pairs is exponential under the
// default order and linear once sifting moves matching pairs together.
func TestReorderShrinksMismatchedPairs(t *testing.T) {
	const nvars = 16 // 8 pairs
	m := New(nvars)
	f := False
	for k := 0; k < 4; k++ {
		f = m.Or(f, m.And(m.Var(2*k), m.Var(2*(k+4))))
	}
	before := m.NodeCount()
	tt := truthTable(m, f, nvars)
	if !m.Reorder([]*Ref{&f}) {
		t.Fatalf("Reorder found no gain on a %d-node mismatched-pair function", before)
	}
	if m.NodeCount() >= before {
		t.Fatalf("Reorder applied but node count did not shrink: %d -> %d", before, m.NodeCount())
	}
	if m.PeakNodes() < before {
		t.Errorf("PeakNodes %d lost the pre-reorder high water %d", m.PeakNodes(), before)
	}
	after := truthTable(m, f, nvars)
	for bits := range after {
		if after[bits] != tt[bits] {
			t.Fatalf("reorder changed the function at assignment %b", bits)
		}
	}
}

// TestReorderDeterministic: the sifted order is a pure function of the live
// graph — two managers driven through the same tape reorder identically.
func TestReorderDeterministic(t *testing.T) {
	run := func() ([]int32, int) {
		m := New(8)
		roots := buildRandomRoots(m, 77, 8, 60)
		ptrs := make([]*Ref, len(roots))
		for i := range roots {
			ptrs[i] = &roots[i]
		}
		m.Reorder(ptrs)
		return m.CurrentOrder(), m.NodeCount()
	}
	o1, n1 := run()
	o2, n2 := run()
	if n1 != n2 {
		t.Fatalf("node counts diverge: %d vs %d", n1, n2)
	}
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatalf("orders diverge: %v vs %v", o1, o2)
		}
	}
}

// TestResetMatchesNew: a reset manager must be observationally identical to
// a fresh one — same node counts, same Footprint, same functions — no matter
// what the previous lease did to its tables.
func TestResetMatchesNew(t *testing.T) {
	recycled := New(4)
	buildRandomRoots(recycled, 5, 4, 200) // warm (and bloat) the tables
	recycled.Reset(8)

	fresh := New(8)
	r1 := buildRandomRoots(recycled, 9, 8, 80)
	r2 := buildRandomRoots(fresh, 9, 8, 80)
	if recycled.NodeCount() != fresh.NodeCount() {
		t.Errorf("NodeCount diverges: reset %d, fresh %d", recycled.NodeCount(), fresh.NodeCount())
	}
	if recycled.PeakNodes() != fresh.PeakNodes() {
		t.Errorf("PeakNodes diverges: reset %d, fresh %d", recycled.PeakNodes(), fresh.PeakNodes())
	}
	if recycled.Footprint() != fresh.Footprint() {
		t.Errorf("Footprint diverges: reset %d, fresh %d", recycled.Footprint(), fresh.Footprint())
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("root %d handle diverges: %d vs %d — hash consing not deterministic",
				i, r1[i], r2[i])
		}
	}
}

// TestPoolRoundTrip: managers leased from a pool behave like New, including
// after a LimitError abandon.
func TestPoolRoundTrip(t *testing.T) {
	var p Pool
	m := p.Get(6)
	buildRandomRoots(m, 3, 6, 100)
	p.Put(m)

	m2 := p.Get(6)
	fresh := New(6)
	a := buildRandomRoots(m2, 4, 6, 60)
	b := buildRandomRoots(fresh, 4, 6, 60)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("pooled manager diverges from fresh at root %d", i)
		}
	}

	// Abandon after a budget panic, then reuse.
	m2.SetNodeLimit(m2.NodeCount() + 2)
	func() {
		defer func() {
			if _, ok := recover().(*LimitError); !ok {
				t.Fatal("expected LimitError panic")
			}
		}()
		for i := 0; ; i++ {
			buildRandomRoots(m2, int64(i), 6, 50)
		}
	}()
	p.Put(m2)
	m3 := p.Get(6)
	c := buildRandomRoots(m3, 4, 6, 60)
	for i := range c {
		if c[i] != b[i] {
			t.Fatalf("post-limit pooled manager diverges at root %d", i)
		}
	}
}

// TestSetOrderRoundTrip: a learned order seeds an empty manager and comes
// back unchanged from CurrentOrder; semantics are order-independent.
func TestSetOrderRoundTrip(t *testing.T) {
	order := []int32{4, 5, 0, 1, 2, 3} // pairs (0,1)->(2,3)->... shuffled by pair
	m := New(6)
	m.SetOrder(order)
	got := m.CurrentOrder()
	for i := range order {
		if got[i] != order[i] {
			t.Fatalf("CurrentOrder = %v, want %v", got, order)
		}
	}
	ident := New(6)
	f := m.Or(m.And(m.Var(0), m.NVar(3)), m.Xor(m.Var(4), m.Var(5)))
	g := ident.Or(ident.And(ident.Var(0), ident.NVar(3)), ident.Xor(ident.Var(4), ident.Var(5)))
	tf, tg := truthTable(m, f, 6), truthTable(ident, g, 6)
	for bits := range tf {
		if tf[bits] != tg[bits] {
			t.Fatalf("SetOrder changed semantics at assignment %b", bits)
		}
	}

	defer func() {
		if recover() == nil {
			t.Fatal("SetOrder on a non-empty manager must panic")
		}
	}()
	m.SetOrder([]int32{0, 1, 2, 3, 4, 5})
}
