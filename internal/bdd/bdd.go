// Package bdd implements reduced ordered binary decision diagrams with a
// shared unique table, the symbolic kernel of the model checker that stands
// in for SAL in this reproduction.
//
// References are int32 handles with a complement edge in bit 0: handle
// index<<1 denotes the function of node `index`, and index<<1|1 denotes its
// negation, so Not is a constant-time bit flip and a function and its
// complement share every node. There is a single terminal node (index 0);
// True and False are its two polarities. Canonicity is kept by the "lo edge
// never complemented" invariant: mk folds a complemented lo edge into the
// result polarity, so structural equality remains pointer (handle) equality
// and the node count is an honest measure of the symbolic state-space
// representation size — the "memory use" column of the paper's Table 2 is
// derived from the peak node count of a run.
//
// Hash consing and the ite/quant/perm operation caches use open-addressed
// tables over packed integer keys (see tables.go); MemoryBytes reports the
// exact backing-array footprint of all of them, while Footprint reports a
// deterministic logical size independent of recycled capacities.
//
// The variable order is dynamic: node levels (order positions) are
// decoupled from variable indices through a var↔level indirection, so the
// public API always speaks variable indices while Reorder (reorder.go) is
// free to sift levels around. Reset re-arms a manager for a fresh session
// without freeing its backing arrays, and Pool (pool.go) recycles managers
// across model-checker queries.
//
// A Manager is not safe for concurrent use: the unique table and operation
// caches mutate on every operation. All state is per-Manager — the package
// has no mutable package-level state — so concurrent model-checker runs
// use one Manager each, leased from a Pool.
package bdd

import (
	"fmt"
	"sort"
)

// Ref is a BDD handle: node index in bits 1..31, complement flag in bit 0.
// False and True are the two polarities of the terminal.
type Ref int32

// Terminal references. Note True is the zero value: the terminal node has
// index 0 and True is its uncomplemented handle.
const (
	True  Ref = 0
	False Ref = 1
)

const terminalLevel = int32(1 << 30)

// node is one decision node: branch level (order position) and the two
// cofactor edges. The stored lo edge is never complemented (canonical
// form); terminals use terminalLevel.
type node struct {
	level  int32
	lo, hi Ref
}

// nodeBytes is the exact size of a node (three 4-byte words, no padding).
const nodeBytes = 12

// Manager owns the node table and operation caches for one variable order.
type Manager struct {
	nodes  []node
	unique uniqueTable
	ite    cache
	quant  cache
	perm   cache
	nvars  int
	limit  int   // node budget; 0 = unlimited
	peak   int   // high-water node count of past reorder epochs (see PeakNodes)
	varRef []Ref // interned single-variable functions, indexed by variable
	cubes  []cube
	perms  [][]int32 // registered renamings, old variable → new variable

	// The dynamic order: var2level[v] is the order position of variable v,
	// level2var its inverse. node.level stores positions, the public API
	// speaks variable indices.
	var2level []int32
	level2var []int32
}

// LimitError is the value a node-budgeted manager panics with when an
// operation would grow the table past the limit (see SetNodeLimit). The
// recursive kernel has no error returns, so the budget unwinds as a typed
// panic that the caller recovers at its API boundary — the model checker
// converts it into a structured budget-exceeded error and resets the
// manager before its next lease.
type LimitError struct {
	Nodes, Limit int
}

func (e *LimitError) Error() string {
	return fmt.Sprintf("bdd: node budget exceeded (%d nodes, limit %d)", e.Nodes, e.Limit)
}

// SetNodeLimit arms a node budget: any operation growing the table past n
// nodes panics with *LimitError. n <= 0 disables the budget. Callers that
// set a limit must recover at their boundary and reset the manager.
func (m *Manager) SetNodeLimit(n int) {
	if n < 0 {
		n = 0
	}
	m.limit = n
}

// cube is a registered quantification variable set. The variable indices
// are the durable form; member is the level-indexed view the inner loops
// test, recomputed whenever the order changes.
type cube struct {
	vars   []int32
	member []bool // indexed by level
}

// New creates a manager for n variables (order = index order).
func New(n int) *Manager {
	m := &Manager{}
	m.setup(n)
	return m
}

// Reset re-arms the manager for a fresh session over n variables: identity
// order, empty tables, no node limit. Backing arrays are recycled when
// their capacity suits the previous session's population and right-sized
// otherwise, so a pooled manager neither reallocates between similar
// queries nor stays bloated after one oversized query. The reset manager
// is observationally identical to New(n) — recycled capacities are
// invisible to everything except MemoryBytes, which is why the model
// checker's deterministic statistics use Footprint instead.
func (m *Manager) Reset(n int) {
	m.setup(n)
}

func (m *Manager) setup(n int) {
	m.nvars = n
	m.limit = 0
	m.peak = 0
	prev := len(m.nodes) // previous session's population sizes the tables
	if prev == 0 {
		prev = 1
	}
	if cap(m.nodes) == 0 || cap(m.nodes) > 8*(prev+1) {
		m.nodes = make([]node, 1, nodesCap(prev))
	} else {
		m.nodes = m.nodes[:1]
	}
	m.nodes[0] = node{level: terminalLevel}
	m.unique.reset(prev)
	m.ite.reset(1 << 11)
	m.quant.reset(1 << 9)
	m.perm.reset(1 << 9)
	m.cubes = m.cubes[:0]
	m.perms = m.perms[:0]
	m.var2level = resizeInt32(m.var2level, n)
	m.level2var = resizeInt32(m.level2var, n)
	for i := 0; i < n; i++ {
		m.var2level[i] = int32(i)
		m.level2var[i] = int32(i)
	}
	m.internVars()
}

// nodesCap sizes a fresh node array from the previous session's node count.
func nodesCap(prev int) int {
	c := 256
	for c < 2*prev {
		c *= 2
	}
	return c
}

func resizeInt32(s []int32, n int) []int32 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]int32, n)
}

// internVars (re)creates the single-variable functions under the current
// order. Only valid while the node table holds nothing but the terminal
// and previously interned variables.
func (m *Manager) internVars() {
	if cap(m.varRef) >= m.nvars {
		m.varRef = m.varRef[:m.nvars]
	} else {
		m.varRef = make([]Ref, m.nvars)
	}
	for i := 0; i < m.nvars; i++ {
		m.varRef[i] = m.mk(m.var2level[i], False, True)
	}
}

// SetOrder installs a variable order (order[v] = level) on a manager that
// holds no functions yet — fresh from New or Reset. It is how a learned
// order from a previous query seeds the next one. The slice is copied;
// a nil order keeps the identity. Panics if order is not a permutation of
// the manager's levels or if user nodes already exist.
func (m *Manager) SetOrder(order []int32) {
	if order == nil {
		return
	}
	if len(m.nodes) != 1+m.nvars {
		panic("bdd: SetOrder on a manager that already holds functions")
	}
	if len(order) != m.nvars {
		panic(fmt.Sprintf("bdd: SetOrder with %d levels for %d variables", len(order), m.nvars))
	}
	for i := range m.level2var {
		m.level2var[i] = -1
	}
	for v, l := range order {
		if l < 0 || int(l) >= m.nvars || m.level2var[l] != -1 {
			panic("bdd: SetOrder order is not a permutation")
		}
		m.var2level[v] = l
		m.level2var[l] = int32(v)
	}
	// Drop the identity-order variable nodes and re-intern under the new
	// levels; the unique table keeps its capacity (a pooled manager's warm
	// table must survive an order seed) and only forgets the old entries.
	m.nodes = m.nodes[:1]
	clear(m.unique.slots)
	m.internVars()
}

// CurrentOrder returns a copy of the current variable order as a
// var → level mapping, suitable for SetOrder on another manager.
func (m *Manager) CurrentOrder() []int32 {
	return append([]int32(nil), m.var2level...)
}

// NumVars reports the variable count.
func (m *Manager) NumVars() int { return m.nvars }

// NodeCount reports the number of live nodes in the current table. Without
// reordering this only grows (the manager does not garbage-collect);
// Reorder rebuilds the table smaller, so the session high-water mark is
// PeakNodes. With complement edges a function and its negation share all
// their nodes, so counts are lower than a two-terminal representation's —
// up to 2× on negation-heavy formulas such as parity.
func (m *Manager) NodeCount() int { return len(m.nodes) }

// PeakNodes reports the session's high-water node count: the largest table
// the manager held since New/Reset, across reorder shrinks. This is the
// paper's Table 2 "memory" driver and is deterministic — a pure function
// of the operation sequence.
func (m *Manager) PeakNodes() int {
	if len(m.nodes) > m.peak {
		return len(m.nodes)
	}
	return m.peak
}

// MemoryBytes reports the exact memory footprint of the node array, the
// unique table, the operation caches, and the registered cubes and
// permutations, computed from their backing-array capacities. On a pooled
// manager capacities depend on what earlier leases did, so this figure is
// volatile; deterministic statistics use Footprint.
func (m *Manager) MemoryBytes() int64 {
	b := int64(cap(m.nodes)) * nodeBytes
	b += int64(len(m.unique.slots)) * 4
	b += m.ite.memoryBytes() + m.quant.memoryBytes() + m.perm.memoryBytes()
	b += int64(cap(m.varRef)) * 4
	for _, c := range m.cubes {
		b += int64(len(c.member)) + int64(len(c.vars))*4
	}
	for _, p := range m.perms {
		b += int64(len(p)) * 4
	}
	return b
}

// Footprint reports the logical working-set size: the bytes the manager's
// live contents would occupy in right-sized tables (tableCap of the live
// populations), ignoring recycled-capacity slack. Unlike MemoryBytes it is
// a pure function of the operation sequence since New/Reset — identical
// whether the manager is fresh or pooled — so it can feed canonical
// reports.
func (m *Manager) Footprint() int64 {
	b := int64(m.PeakNodes()) * nodeBytes
	b += int64(tableCap(m.PeakNodes(), 1<<10)) * 4
	b += int64(tableCap(m.ite.used, 1<<11)) * 16
	b += int64(tableCap(m.quant.used, 1<<9)) * 16
	b += int64(tableCap(m.perm.used, 1<<9)) * 16
	b += int64(len(m.varRef)) * 4
	for _, c := range m.cubes {
		b += int64(len(c.member)) + int64(len(c.vars))*4
	}
	for _, p := range m.perms {
		b += int64(len(p)) * 4
	}
	return b
}

// Health is a snapshot of the kernel's internal efficiency counters. The
// tallies are lifetime totals that survive Reset (a recycled manager keeps
// accumulating); delimit one lease or query by snapshotting before and
// after and calling Sub. They are exported to observability as volatile
// metrics, since a pooled manager's lifetime spans a scheduling-dependent
// sequence of queries.
type Health struct {
	UniqueRehashes int64 // unique-table growth events
	ITELookups     int64 // ite-cache probes…
	ITEHits        int64 // …and hits
	QuantLookups   int64
	QuantHits      int64
	PermLookups    int64
	PermHits       int64
}

// Health returns the current kernel-health counters.
func (m *Manager) Health() Health {
	return Health{
		UniqueRehashes: m.unique.rehashes,
		ITELookups:     m.ite.lookups,
		ITEHits:        m.ite.hits,
		QuantLookups:   m.quant.lookups,
		QuantHits:      m.quant.hits,
		PermLookups:    m.perm.lookups,
		PermHits:       m.perm.hits,
	}
}

// Sub subtracts an earlier snapshot, giving the counters of one span.
func (h Health) Sub(o Health) Health {
	return Health{
		UniqueRehashes: h.UniqueRehashes - o.UniqueRehashes,
		ITELookups:     h.ITELookups - o.ITELookups,
		ITEHits:        h.ITEHits - o.ITEHits,
		QuantLookups:   h.QuantLookups - o.QuantLookups,
		QuantHits:      h.QuantHits - o.QuantHits,
		PermLookups:    h.PermLookups - o.PermLookups,
		PermHits:       h.PermHits - o.PermHits,
	}
}

// level of the node a handle points at (complement flag ignored).
func (m *Manager) level(r Ref) int32 { return m.nodes[r>>1].level }

// mk interns the node (level, lo, hi), enforcing canonical form: equal
// children collapse, and a complemented lo edge is folded into the result's
// polarity so the stored lo edge is always regular.
func (m *Manager) mk(level int32, lo, hi Ref) Ref {
	if lo == hi {
		return lo
	}
	if lo&1 != 0 {
		// ¬ite(v, ¬hi, ¬lo): flip both children, return the complement.
		return m.mkRaw(level, lo^1, hi^1) ^ 1
	}
	return m.mkRaw(level, lo, hi)
}

func (m *Manager) mkRaw(level int32, lo, hi Ref) Ref {
	idx, slot := m.unique.lookup(m.nodes, level, lo, hi)
	if idx != 0 {
		return Ref(idx) << 1
	}
	idx = int32(len(m.nodes))
	if m.limit > 0 && int(idx) >= m.limit {
		panic(&LimitError{Nodes: int(idx), Limit: m.limit})
	}
	m.nodes = append(m.nodes, node{level: level, lo: lo, hi: hi})
	m.unique.slots[slot] = idx
	if uint32(len(m.nodes)) > (m.unique.mask+1)/4*3 {
		m.unique.rehash(m.nodes)
	}
	return Ref(idx) << 1
}

// Var returns the BDD of variable i.
func (m *Manager) Var(i int) Ref {
	if i < 0 || i >= m.nvars {
		panic(fmt.Sprintf("bdd: variable %d out of range [0,%d)", i, m.nvars))
	}
	return m.varRef[i]
}

// NVar returns ¬variable i.
func (m *Manager) NVar(i int) Ref {
	return m.Var(i) ^ 1
}

// Lit returns variable i or its negation.
func (m *Manager) Lit(i int, positive bool) Ref {
	if positive {
		return m.Var(i)
	}
	return m.NVar(i)
}

// Not returns ¬f — with complement edges, a constant-time handle flip.
func (m *Manager) Not(f Ref) Ref { return f ^ 1 }

// ITE computes if-then-else(f, g, h).
func (m *Manager) ITE(f, g, h Ref) Ref {
	// Equivalent-operand rewrites: ite(f,f,h)=ite(f,1,h), ite(f,¬f,h)=
	// ite(f,0,h), ite(f,g,f)=ite(f,g,0), ite(f,g,¬f)=ite(f,g,1).
	if f == g {
		g = True
	} else if f == g^1 {
		g = False
	}
	if f == h {
		h = False
	} else if f == h^1 {
		h = True
	}
	// Terminal cases.
	switch {
	case f == True:
		return g
	case f == False:
		return h
	case g == h:
		return g
	case g == True && h == False:
		return f
	case g == False && h == True:
		return f ^ 1
	}
	// Canonical polarity for the cache: regular f (ite(¬f,g,h)=ite(f,h,g))
	// and regular g (ite(f,¬g,¬h)=¬ite(f,g,h)).
	if f&1 != 0 {
		f ^= 1
		g, h = h, g
	}
	var out Ref
	if g&1 != 0 {
		g ^= 1
		h ^= 1
		out = 1
	}
	return m.iteStep(f, g, h) ^ out
}

func (m *Manager) iteStep(f, g, h Ref) Ref {
	key := uint64(uint32(f))<<32 | uint64(uint32(g))
	if r, ok := m.ite.get(key, uint32(h)); ok {
		return r
	}
	top := m.level(f)
	if l := m.level(g); l < top {
		top = l
	}
	if l := m.level(h); l < top {
		top = l
	}
	f0, f1 := m.cofactors(f, top)
	g0, g1 := m.cofactors(g, top)
	h0, h1 := m.cofactors(h, top)
	lo := m.ITE(f0, g0, h0)
	hi := m.ITE(f1, g1, h1)
	r := m.mk(top, lo, hi)
	m.ite.put(key, uint32(h), r)
	return r
}

// cofactors returns f's children at the given level, complement flags
// pushed down; a function above (or independent of) the level cofactors to
// itself.
func (m *Manager) cofactors(f Ref, level int32) (lo, hi Ref) {
	n := &m.nodes[f>>1]
	if n.level != level {
		return f, f
	}
	c := f & 1
	return n.lo ^ c, n.hi ^ c
}

// And returns f ∧ g.
func (m *Manager) And(f, g Ref) Ref { return m.ITE(f, g, False) }

// Or returns f ∨ g.
func (m *Manager) Or(f, g Ref) Ref { return m.ITE(f, True, g) }

// Xor returns f ⊕ g.
func (m *Manager) Xor(f, g Ref) Ref { return m.ITE(f, g^1, g) }

// Iff returns f ↔ g.
func (m *Manager) Iff(f, g Ref) Ref { return m.ITE(f, g, g^1) }

// Implies returns f → g.
func (m *Manager) Implies(f, g Ref) Ref { return m.ITE(f, g, True) }

// AndN conjoins many operands.
func (m *Manager) AndN(fs ...Ref) Ref {
	r := True
	for _, f := range fs {
		r = m.And(r, f)
		if r == False {
			return False
		}
	}
	return r
}

// OrN disjoins many operands.
func (m *Manager) OrN(fs ...Ref) Ref {
	r := False
	for _, f := range fs {
		r = m.Or(r, f)
		if r == True {
			return True
		}
	}
	return r
}

// ---------------------------------------------------------------------------
// Quantification

// Cube registers a set of variables for quantification and returns its id.
// Cubes survive reorders: the variable set is durable, the level view is
// recomputed when the order changes.
func (m *Manager) Cube(vars []int) int {
	c := cube{vars: make([]int32, len(vars))}
	for i, v := range vars {
		c.vars[i] = int32(v)
	}
	c.member = m.cubeLevels(c.vars, nil)
	m.cubes = append(m.cubes, c)
	return len(m.cubes) - 1
}

// cubeLevels builds the level-indexed membership view of a variable set.
func (m *Manager) cubeLevels(vars []int32, member []bool) []bool {
	if cap(member) >= m.nvars {
		member = member[:m.nvars]
		clear(member)
	} else {
		member = make([]bool, m.nvars)
	}
	for _, v := range vars {
		member[m.var2level[v]] = true
	}
	return member
}

// Exists quantifies the cube's variables existentially out of f.
func (m *Manager) Exists(f Ref, cubeID int) Ref {
	return m.andExists(f, True, cubeID)
}

// AndExists computes ∃cube (f ∧ g) without materialising f ∧ g — the
// relational-product workhorse of image computation.
func (m *Manager) AndExists(f, g Ref, cubeID int) Ref {
	return m.andExists(f, g, cubeID)
}

func (m *Manager) andExists(f, g Ref, cubeID int) Ref {
	if f == False || g == False || f == g^1 {
		return False
	}
	if f == g {
		g = True
	}
	if f == True && g == True {
		return True
	}
	top := m.level(f)
	if l := m.level(g); l < top {
		top = l
	}
	if top == terminalLevel {
		return m.And(f, g)
	}
	// Normalise operand order for the cache.
	a, b := f, g
	if a > b {
		a, b = b, a
	}
	key := uint64(uint32(a))<<32 | uint64(uint32(b))
	if r, ok := m.quant.get(key, uint32(cubeID)); ok {
		return r
	}
	f0, f1 := m.cofactors(f, top)
	g0, g1 := m.cofactors(g, top)
	var r Ref
	if m.cubes[cubeID].member[top] {
		lo := m.andExists(f0, g0, cubeID)
		if lo == True {
			r = True
		} else {
			hi := m.andExists(f1, g1, cubeID)
			r = m.Or(lo, hi)
		}
	} else {
		lo := m.andExists(f0, g0, cubeID)
		hi := m.andExists(f1, g1, cubeID)
		r = m.mk(top, lo, hi)
	}
	m.quant.put(key, uint32(cubeID), r)
	return r
}

// ---------------------------------------------------------------------------
// Variable permutation (renaming)

// Permutation registers a variable renaming (old index → new index) and
// returns its id. Unlisted variables map to themselves. (The map range
// below only scatters into distinct slice slots, so iteration order cannot
// influence the registered permutation.) Permutations are stored over
// variable indices, so they survive reorders unchanged.
func (m *Manager) Permutation(mapping map[int]int) int {
	perm := make([]int32, m.nvars)
	for i := range perm {
		perm[i] = int32(i)
	}
	for from, to := range mapping {
		perm[from] = int32(to)
	}
	m.perms = append(m.perms, perm)
	return len(m.perms) - 1
}

// Rename applies a registered permutation to f.
func (m *Manager) Rename(f Ref, permID int) Ref {
	return m.rename(f, permID)
}

func (m *Manager) rename(f Ref, permID int) Ref {
	if f>>1 == 0 {
		return f
	}
	// Cache on the regular handle; the complement commutes with renaming.
	c := f & 1
	fr := f ^ c
	key := uint64(uint32(fr))<<32 | uint64(uint32(permID))
	if r, ok := m.perm.get(key, 0); ok {
		return r ^ c
	}
	n := m.nodes[fr>>1]
	lo := m.rename(n.lo, permID)
	hi := m.rename(n.hi, permID)
	v := m.perms[permID][m.level2var[n.level]]
	// Rebuild with ITE on the renamed variable to restore ordering.
	r := m.ITE(m.Var(int(v)), hi, lo)
	m.perm.put(key, 0, r)
	return r ^ c
}

// ---------------------------------------------------------------------------
// Satisfying assignments and counting

// SatOne returns one satisfying assignment as a slice over all variables:
// 0, 1, or -1 (don't care). ok is false when f is unsatisfiable.
func (m *Manager) SatOne(f Ref) (assign []int8, ok bool) {
	if f == False {
		return nil, false
	}
	assign = make([]int8, m.nvars)
	for i := range assign {
		assign[i] = -1
	}
	for f != True {
		n := &m.nodes[f>>1]
		c := f & 1
		lo, hi := n.lo^c, n.hi^c
		if hi != False {
			assign[m.level2var[n.level]] = 1
			f = hi
		} else {
			assign[m.level2var[n.level]] = 0
			f = lo
		}
	}
	return assign, true
}

// SatCount returns the number of satisfying assignments over all variables.
func (m *Manager) SatCount(f Ref) float64 {
	if f == False {
		return 0
	}
	memo := map[Ref]float64{}
	var count func(r Ref) float64 // assignments below r's level, scaled later
	count = func(r Ref) float64 {
		if r == False {
			return 0
		}
		if r == True {
			return 1
		}
		if v, ok := memo[r]; ok {
			return v
		}
		n := &m.nodes[r>>1]
		c := r & 1
		lo, hi := n.lo^c, n.hi^c
		v := count(lo)*pow2(m.gap(n.level, lo)) + count(hi)*pow2(m.gap(n.level, hi))
		memo[r] = v
		return v
	}
	top := m.level(f)
	if top == terminalLevel {
		top = int32(m.nvars) // f == True
	}
	return count(f) * pow2(int(top))
}

// gap counts the skipped levels between a node and its child; since levels
// biject onto variables, skipped levels are skipped variables.
func (m *Manager) gap(level int32, child Ref) int {
	cl := m.level(child)
	if cl == terminalLevel {
		cl = int32(m.nvars)
	}
	return int(cl - level - 1)
}

func pow2(n int) float64 {
	v := 1.0
	for i := 0; i < n; i++ {
		v *= 2
	}
	return v
}

// Support returns the sorted variable indices f depends on.
func (m *Manager) Support(f Ref) []int {
	seen := map[Ref]bool{}
	vars := map[int]bool{}
	var walk func(Ref)
	walk = func(r Ref) {
		idx := r >> 1 // complement edges share support
		if idx == 0 || seen[idx] {
			return
		}
		seen[idx] = true
		n := &m.nodes[idx]
		vars[int(m.level2var[n.level])] = true
		walk(n.lo)
		walk(n.hi)
	}
	walk(f)
	out := make([]int, 0, len(vars))
	for v := range vars {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// Eval evaluates f under a total assignment (indexed by variable).
func (m *Manager) Eval(f Ref, assign []bool) bool {
	for f>>1 != 0 {
		n := &m.nodes[f>>1]
		c := f & 1
		if assign[m.level2var[n.level]] {
			f = n.hi ^ c
		} else {
			f = n.lo ^ c
		}
	}
	return f == True
}
