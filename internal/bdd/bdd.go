// Package bdd implements reduced ordered binary decision diagrams with a
// shared unique table, the symbolic kernel of the model checker that stands
// in for SAL in this reproduction.
//
// References are int32 handles; 0 and 1 are the terminals. Nodes are
// hash-consed, so structural equality is pointer equality and the node count
// is an honest measure of the symbolic state-space representation size —
// the "memory use" column of the paper's Table 2 is derived from the peak
// node count of a run.
//
// A Manager is not safe for concurrent use: the unique table and operation
// caches mutate on every operation. All state is per-Manager — the package
// has no mutable package-level state — so concurrent model-checker runs
// simply build one fresh Manager each, which is what mc.CheckSymbolic does.
package bdd

import (
	"fmt"
	"sort"
)

// Ref is a BDD handle. False and True are the terminals.
type Ref int32

// Terminal references.
const (
	False Ref = 0
	True  Ref = 1
)

const terminalLevel = int32(1 << 30)

type node struct {
	level  int32 // variable index (order position); terminals use terminalLevel
	lo, hi Ref
}

// Manager owns the node table and operation caches for one variable order.
type Manager struct {
	nodes  []node
	unique map[[3]int32]Ref
	ite    map[iteKey]Ref
	quant  map[quantKey]Ref
	perm   map[permKey]Ref
	nvars  int
	cubes  []cube
	perms  [][]int32
}

type iteKey struct{ f, g, h Ref }

type quantKey struct {
	f    Ref
	cube int32
	conj Ref // True for plain Exists; otherwise AndExists partner
}

type permKey struct {
	f    Ref
	perm int32
}

type cube struct {
	levels map[int32]bool
	min    int32
}

// New creates a manager for n variables (order = index order).
func New(n int) *Manager {
	m := &Manager{
		unique: map[[3]int32]Ref{},
		ite:    map[iteKey]Ref{},
		quant:  map[quantKey]Ref{},
		perm:   map[permKey]Ref{},
		nvars:  n,
	}
	// Terminals.
	m.nodes = append(m.nodes,
		node{level: terminalLevel},
		node{level: terminalLevel},
	)
	return m
}

// NumVars reports the variable count.
func (m *Manager) NumVars() int { return m.nvars }

// NodeCount reports the number of live nodes ever created (the manager does
// not garbage-collect; this is also the peak).
func (m *Manager) NodeCount() int { return len(m.nodes) }

// MemoryBytes estimates the memory footprint of the node table and caches.
func (m *Manager) MemoryBytes() int64 {
	const nodeSize = 12  // level + 2 refs
	const entrySize = 24 // hash table entry estimate
	return int64(len(m.nodes))*nodeSize +
		int64(len(m.unique)+len(m.ite)+len(m.quant)+len(m.perm))*entrySize
}

func (m *Manager) level(r Ref) int32 { return m.nodes[r].level }

func (m *Manager) mk(level int32, lo, hi Ref) Ref {
	if lo == hi {
		return lo
	}
	key := [3]int32{level, int32(lo), int32(hi)}
	if r, ok := m.unique[key]; ok {
		return r
	}
	r := Ref(len(m.nodes))
	m.nodes = append(m.nodes, node{level: level, lo: lo, hi: hi})
	m.unique[key] = r
	return r
}

// Var returns the BDD of variable i.
func (m *Manager) Var(i int) Ref {
	if i < 0 || i >= m.nvars {
		panic(fmt.Sprintf("bdd: variable %d out of range [0,%d)", i, m.nvars))
	}
	return m.mk(int32(i), False, True)
}

// NVar returns ¬variable i.
func (m *Manager) NVar(i int) Ref {
	return m.mk(int32(i), True, False)
}

// Lit returns variable i or its negation.
func (m *Manager) Lit(i int, positive bool) Ref {
	if positive {
		return m.Var(i)
	}
	return m.NVar(i)
}

// ITE computes if-then-else(f, g, h).
func (m *Manager) ITE(f, g, h Ref) Ref {
	// Terminal shortcuts.
	switch {
	case f == True:
		return g
	case f == False:
		return h
	case g == h:
		return g
	case g == True && h == False:
		return f
	}
	key := iteKey{f, g, h}
	if r, ok := m.ite[key]; ok {
		return r
	}
	top := m.level(f)
	if l := m.level(g); l < top {
		top = l
	}
	if l := m.level(h); l < top {
		top = l
	}
	f0, f1 := m.cofactors(f, top)
	g0, g1 := m.cofactors(g, top)
	h0, h1 := m.cofactors(h, top)
	lo := m.ITE(f0, g0, h0)
	hi := m.ITE(f1, g1, h1)
	r := m.mk(top, lo, hi)
	m.ite[key] = r
	return r
}

func (m *Manager) cofactors(f Ref, level int32) (lo, hi Ref) {
	n := m.nodes[f]
	if n.level != level {
		return f, f
	}
	return n.lo, n.hi
}

// Not returns ¬f.
func (m *Manager) Not(f Ref) Ref { return m.ITE(f, False, True) }

// And returns f ∧ g.
func (m *Manager) And(f, g Ref) Ref { return m.ITE(f, g, False) }

// Or returns f ∨ g.
func (m *Manager) Or(f, g Ref) Ref { return m.ITE(f, True, g) }

// Xor returns f ⊕ g.
func (m *Manager) Xor(f, g Ref) Ref { return m.ITE(f, m.Not(g), g) }

// Iff returns f ↔ g.
func (m *Manager) Iff(f, g Ref) Ref { return m.ITE(f, g, m.Not(g)) }

// Implies returns f → g.
func (m *Manager) Implies(f, g Ref) Ref { return m.ITE(f, g, True) }

// AndN conjoins many operands.
func (m *Manager) AndN(fs ...Ref) Ref {
	r := True
	for _, f := range fs {
		r = m.And(r, f)
		if r == False {
			return False
		}
	}
	return r
}

// OrN disjoins many operands.
func (m *Manager) OrN(fs ...Ref) Ref {
	r := False
	for _, f := range fs {
		r = m.Or(r, f)
		if r == True {
			return True
		}
	}
	return r
}

// ---------------------------------------------------------------------------
// Quantification

// Cube registers a set of variables for quantification and returns its id.
func (m *Manager) Cube(vars []int) int {
	levels := map[int32]bool{}
	min := terminalLevel
	for _, v := range vars {
		levels[int32(v)] = true
		if int32(v) < min {
			min = int32(v)
		}
	}
	m.cubes = append(m.cubes, cube{levels: levels, min: min})
	return len(m.cubes) - 1
}

// Exists quantifies the cube's variables existentially out of f.
func (m *Manager) Exists(f Ref, cubeID int) Ref {
	return m.andExists(f, True, cubeID)
}

// AndExists computes ∃cube (f ∧ g) without materialising f ∧ g — the
// relational-product workhorse of image computation.
func (m *Manager) AndExists(f, g Ref, cubeID int) Ref {
	return m.andExists(f, g, cubeID)
}

func (m *Manager) andExists(f, g Ref, cubeID int) Ref {
	if f == False || g == False {
		return False
	}
	cb := m.cubes[cubeID]
	if f == True && g == True {
		return True
	}
	top := m.level(f)
	if l := m.level(g); l < top {
		top = l
	}
	if top == terminalLevel {
		return m.And(f, g)
	}
	// Normalise operand order for the cache.
	a, b := f, g
	if a > b {
		a, b = b, a
	}
	key := quantKey{f: a, cube: int32(cubeID), conj: b}
	if r, ok := m.quant[key]; ok {
		return r
	}
	f0, f1 := m.cofactors(f, top)
	g0, g1 := m.cofactors(g, top)
	var r Ref
	if cb.levels[top] {
		lo := m.andExists(f0, g0, cubeID)
		if lo == True {
			r = True
		} else {
			hi := m.andExists(f1, g1, cubeID)
			r = m.Or(lo, hi)
		}
	} else {
		lo := m.andExists(f0, g0, cubeID)
		hi := m.andExists(f1, g1, cubeID)
		r = m.mk(top, lo, hi)
	}
	m.quant[key] = r
	return r
}

// ---------------------------------------------------------------------------
// Variable permutation (renaming)

// Permutation registers a variable renaming (old index → new index) and
// returns its id. Unlisted variables map to themselves.
func (m *Manager) Permutation(mapping map[int]int) int {
	perm := make([]int32, m.nvars)
	for i := range perm {
		perm[i] = int32(i)
	}
	for from, to := range mapping {
		perm[from] = int32(to)
	}
	m.perms = append(m.perms, perm)
	return len(m.perms) - 1
}

// Rename applies a registered permutation to f.
func (m *Manager) Rename(f Ref, permID int) Ref {
	return m.rename(f, permID)
}

func (m *Manager) rename(f Ref, permID int) Ref {
	if f == True || f == False {
		return f
	}
	key := permKey{f: f, perm: int32(permID)}
	if r, ok := m.perm[key]; ok {
		return r
	}
	n := m.nodes[f]
	lo := m.rename(n.lo, permID)
	hi := m.rename(n.hi, permID)
	v := m.perms[permID][n.level]
	// Rebuild with ITE on the renamed variable to restore ordering.
	r := m.ITE(m.Var(int(v)), hi, lo)
	m.perm[key] = r
	return r
}

// ---------------------------------------------------------------------------
// Satisfying assignments and counting

// SatOne returns one satisfying assignment as a slice over all variables:
// 0, 1, or -1 (don't care). ok is false when f is unsatisfiable.
func (m *Manager) SatOne(f Ref) (assign []int8, ok bool) {
	if f == False {
		return nil, false
	}
	assign = make([]int8, m.nvars)
	for i := range assign {
		assign[i] = -1
	}
	for f != True {
		n := m.nodes[f]
		if n.hi != False {
			assign[n.level] = 1
			f = n.hi
		} else {
			assign[n.level] = 0
			f = n.lo
		}
	}
	return assign, true
}

// SatCount returns the number of satisfying assignments over all variables.
func (m *Manager) SatCount(f Ref) float64 {
	memo := map[Ref]float64{}
	var count func(r Ref) float64 // assignments below r's level, scaled later
	count = func(r Ref) float64 {
		if r == False {
			return 0
		}
		if r == True {
			return 1
		}
		if v, ok := memo[r]; ok {
			return v
		}
		n := m.nodes[r]
		c := count(n.lo)*pow2(m.gap(n.level, n.lo)) + count(n.hi)*pow2(m.gap(n.level, n.hi))
		memo[r] = c
		return c
	}
	root := count(f)
	if f == False {
		return 0
	}
	top := m.level(f)
	if top == terminalLevel {
		top = int32(m.nvars)
	}
	return root * pow2(int(top))
}

// gap counts the skipped variables between a node and its child.
func (m *Manager) gap(level int32, child Ref) int {
	cl := m.level(child)
	if cl == terminalLevel {
		cl = int32(m.nvars)
	}
	return int(cl - level - 1)
}

func pow2(n int) float64 {
	v := 1.0
	for i := 0; i < n; i++ {
		v *= 2
	}
	return v
}

// Support returns the sorted variable indices f depends on.
func (m *Manager) Support(f Ref) []int {
	seen := map[Ref]bool{}
	vars := map[int]bool{}
	var walk func(Ref)
	walk = func(r Ref) {
		if r <= True || seen[r] {
			return
		}
		seen[r] = true
		n := m.nodes[r]
		vars[int(n.level)] = true
		walk(n.lo)
		walk(n.hi)
	}
	walk(f)
	out := make([]int, 0, len(vars))
	for v := range vars {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// Eval evaluates f under a total assignment.
func (m *Manager) Eval(f Ref, assign []bool) bool {
	for f != True && f != False {
		n := m.nodes[f]
		if assign[n.level] {
			f = n.hi
		} else {
			f = n.lo
		}
	}
	return f == True
}
