package measure

import (
	"testing"

	"wcet/internal/cc/ast"
	"wcet/internal/cc/parser"
	"wcet/internal/cc/sem"
	"wcet/internal/cfg"
	"wcet/internal/codegen"
	"wcet/internal/interp"
	"wcet/internal/partition"
	"wcet/internal/sim"
)

type fixture struct {
	file *ast.File
	g    *cfg.Graph
	vm   *sim.VM
}

func setup(t *testing.T, src, name string) *fixture {
	t.Helper()
	f, err := parser.ParseFile("t.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if _, err := sem.Check(f); err != nil {
		t.Fatalf("sem: %v", err)
	}
	g, err := cfg.Build(f.Func(name))
	if err != nil {
		t.Fatalf("cfg: %v", err)
	}
	img, err := codegen.Compile(g, f)
	if err != nil {
		t.Fatalf("codegen: %v", err)
	}
	return &fixture{file: f, g: g, vm: sim.New(img, sim.Options{})}
}

func (fx *fixture) global(name string) *ast.VarDecl {
	for _, g := range fx.file.Globals {
		if g.Name == name {
			return g
		}
	}
	return nil
}

const measSrc = `
/*@ input */ /*@ range 0 3 */ int sel;
/*@ input */ /*@ range 0 1 */ int flag;
int r;
int f(void) {
    r = 0;
    switch (sel) {
    case 0: r = 1; break;
    case 1: r = r + 2; r = r * 3; break;
    case 2: if (flag == 1) { r = 7; } break;
    default: r = 9; break;
    }
    if (flag == 1) { r = r + 1; }
    return r;
}`

func (fx *fixture) allInputs(t *testing.T) []interp.Env {
	t.Helper()
	envs, err := EnumerateInputs([]InputVar{
		{Decl: fx.global("sel"), Lo: 0, Hi: 3},
		{Decl: fx.global("flag"), Lo: 0, Hi: 1},
	}, interp.Env{}, 10000)
	if err != nil {
		t.Fatal(err)
	}
	return envs
}

func TestEnumerateInputs(t *testing.T) {
	fx := setup(t, measSrc, "f")
	envs := fx.allInputs(t)
	if len(envs) != 8 {
		t.Fatalf("enumerated %d inputs, want 8", len(envs))
	}
	seen := map[[2]int64]bool{}
	for _, e := range envs {
		key := [2]int64{e[fx.global("sel")], e[fx.global("flag")]}
		if seen[key] {
			t.Errorf("duplicate input %v", key)
		}
		seen[key] = true
	}
}

func TestEnumerateInputsCap(t *testing.T) {
	fx := setup(t, measSrc, "f")
	_, err := EnumerateInputs([]InputVar{
		{Decl: fx.global("sel"), Lo: 0, Hi: 1 << 20},
	}, interp.Env{}, 1000)
	if err == nil {
		t.Error("expected cap error")
	}
}

func TestCampaignCoversAllUnits(t *testing.T) {
	fx := setup(t, measSrc, "f")
	plan := partition.MustPartitionBound(fx.g, 1)
	res, err := Campaign(plan, fx.vm, fx.allInputs(t))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Covered() {
		for i, ut := range res.Times {
			if ut.Samples == 0 {
				t.Errorf("unit %d (%v) never observed", i, ut.Unit.Kind)
			}
		}
	}
	if res.Runs != 8 {
		t.Errorf("runs = %d, want 8", res.Runs)
	}
}

func TestBlockTimesPositiveAndStable(t *testing.T) {
	fx := setup(t, measSrc, "f")
	plan := partition.MustPartitionBound(fx.g, 1)
	res, err := Campaign(plan, fx.vm, fx.allInputs(t))
	if err != nil {
		t.Fatal(err)
	}
	for i, ut := range res.Times {
		if ut.Samples > 0 && ut.Max < 0 {
			t.Errorf("unit %d: max < 0 with samples", i)
		}
	}
	// Re-running the same campaign gives identical maxima (determinism).
	res2, err := Campaign(plan, fx.vm, fx.allInputs(t))
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Times {
		if res.Times[i].Max != res2.Times[i].Max {
			t.Errorf("unit %d: max differs between campaigns", i)
		}
	}
}

func TestWholeSegmentPerPathTimes(t *testing.T) {
	fx := setup(t, measSrc, "f")
	// Large bound: the whole function is one unit.
	plan := partition.MustPartitionBound(fx.g, 1000)
	if len(plan.Units) != 1 || plan.Units[0].Kind != partition.WholePS {
		t.Fatalf("expected a single whole-function unit, got %d", len(plan.Units))
	}
	res, err := Campaign(plan, fx.vm, fx.allInputs(t))
	if err != nil {
		t.Fatal(err)
	}
	ut := res.Times[0]
	// Each of the 8 inputs drives a distinct end-to-end path here (flag
	// steers both its decisions consistently, sel picks the clause).
	if len(ut.PerPath) != 8 {
		t.Errorf("distinct paths observed = %d, want 8", len(ut.PerPath))
	}
	// The unit max equals the exhaustive end-to-end max.
	exh, err := ExhaustiveMax(fx.vm, fx.allInputs(t))
	if err != nil {
		t.Fatal(err)
	}
	if ut.Max != exh {
		t.Errorf("whole-function unit max %d != exhaustive %d", ut.Max, exh)
	}
}

func TestExhaustiveMaxMonotoneInData(t *testing.T) {
	fx := setup(t, measSrc, "f")
	all := fx.allInputs(t)
	some, err := ExhaustiveMax(fx.vm, all[:3])
	if err != nil {
		t.Fatal(err)
	}
	full, err := ExhaustiveMax(fx.vm, all)
	if err != nil {
		t.Fatal(err)
	}
	if some > full {
		t.Errorf("subset max %d exceeds full max %d", some, full)
	}
}
