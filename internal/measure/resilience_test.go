package measure

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"wcet/internal/fail"
	"wcet/internal/faults"
	"wcet/internal/partition"
)

func (fx *fixture) planAndInputs(t *testing.T) (*partition.Plan, []InputVar) {
	t.Helper()
	return partition.MustPartitionBound(fx.g, 1), []InputVar{
		{Decl: fx.global("sel"), Lo: 0, Hi: 3},
		{Decl: fx.global("flag"), Lo: 0, Hi: 1},
	}
}

func TestCampaignInjectedFaultAttributedToVector(t *testing.T) {
	fx := setup(t, measSrc, "f")
	plan, _ := fx.planAndInputs(t)
	data := fx.allInputs(t)
	for _, workers := range []int{1, 4} {
		ctx := faults.With(context.Background(),
			faults.New(faults.Rule{Site: "measure.run", Index: 1}))
		res, err := CampaignCtx(ctx, plan, fx.vm, data, workers)
		if res != nil || err == nil {
			t.Fatalf("workers=%d: injected fault not surfaced: (%v, %v)", workers, res, err)
		}
		if !errors.Is(err, fail.ErrInfrastructure) {
			t.Errorf("workers=%d: got %v, want infrastructure failure", workers, err)
		}
		if !strings.Contains(err.Error(), "vector 1") {
			t.Errorf("workers=%d: error %q not attributed to vector 1", workers, err)
		}
	}
}

func TestCampaignErrorDeterministicAcrossWorkers(t *testing.T) {
	fx := setup(t, measSrc, "f")
	plan, _ := fx.planAndInputs(t)
	data := fx.allInputs(t)
	run := func(workers int) string {
		// Two armed faults: the lower-indexed one must win regardless of
		// which worker reaches which vector first.
		ctx := faults.With(context.Background(), faults.New(
			faults.Rule{Site: "measure.run", Index: 5},
			faults.Rule{Site: "measure.run", Index: 2}))
		_, err := CampaignCtx(ctx, plan, fx.vm, data, workers)
		if err == nil {
			t.Fatalf("workers=%d: no error", workers)
		}
		return err.Error()
	}
	serial := run(1)
	if !strings.Contains(serial, "vector 2") {
		t.Fatalf("serial error %q must blame the lowest-indexed fault", serial)
	}
	for i := 0; i < 5; i++ {
		if p := run(4); p != serial {
			t.Fatalf("error differs across workers:\n  1: %s\n  4: %s", serial, p)
		}
	}
}

func TestCampaignInjectedPanicIsolated(t *testing.T) {
	fx := setup(t, measSrc, "f")
	plan, _ := fx.planAndInputs(t)
	data := fx.allInputs(t)
	ctx := faults.With(context.Background(),
		faults.New(faults.Rule{Site: "measure.run", Index: 3, Mode: faults.Panic}))
	_, err := CampaignCtx(ctx, plan, fx.vm, data, 4)
	if !errors.Is(err, fail.ErrWorkerPanic) {
		t.Fatalf("got %v, want ErrWorkerPanic", err)
	}
	var fe *fail.Error
	if !errors.As(err, &fe) || len(fe.Stack) == 0 {
		t.Error("panic error must carry the worker stack")
	}
}

func TestCampaignCancelled(t *testing.T) {
	fx := setup(t, measSrc, "f")
	plan, _ := fx.planAndInputs(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := CampaignCtx(ctx, plan, fx.vm, fx.allInputs(t), 4); !errors.Is(err, fail.ErrCancelled) {
		t.Errorf("cancelled campaign: got %v, want ErrCancelled", err)
	}
}

func TestExhaustiveInjectedFault(t *testing.T) {
	fx := setup(t, measSrc, "f")
	ctx := faults.With(context.Background(),
		faults.New(faults.Rule{Site: "measure.exhaustive", Index: 0}))
	if _, err := ExhaustiveMaxCtx(ctx, fx.vm, fx.allInputs(t), 2); err == nil ||
		!strings.Contains(err.Error(), "vector 0") {
		t.Errorf("exhaustive fault: got %v, want vector-0 attribution", err)
	}
}

// TestFailedCampaignsLeakNoGoroutines drives every failure mode — fault,
// panic, cancellation — repeatedly and checks the goroutine count settles
// back, so a long-running analysis service can absorb failed campaigns.
func TestFailedCampaignsLeakNoGoroutines(t *testing.T) {
	fx := setup(t, measSrc, "f")
	plan, _ := fx.planAndInputs(t)
	data := fx.allInputs(t)
	before := runtime.NumGoroutine()
	for round := 0; round < 10; round++ {
		ctx := faults.With(context.Background(),
			faults.New(faults.Rule{Site: "measure.run", Index: 1}))
		CampaignCtx(ctx, plan, fx.vm, data, 4)
		ctx = faults.With(context.Background(),
			faults.New(faults.Rule{Site: "measure.run", Index: 0, Mode: faults.Panic}))
		CampaignCtx(ctx, plan, fx.vm, data, 4)
		cctx, cancel := context.WithCancel(context.Background())
		cancel()
		CampaignCtx(cctx, plan, fx.vm, data, 4)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines: %d before, %d after failed campaigns", before, runtime.NumGoroutine())
}
