package measure

import (
	"context"
	"errors"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"wcet/internal/fail"
	"wcet/internal/faults"
	"wcet/internal/journal"
	"wcet/internal/partition"
	"wcet/internal/retry"
)

func (fx *fixture) planAndInputs(t *testing.T) (*partition.Plan, []InputVar) {
	t.Helper()
	return partition.MustPartitionBound(fx.g, 1), []InputVar{
		{Decl: fx.global("sel"), Lo: 0, Hi: 3},
		{Decl: fx.global("flag"), Lo: 0, Hi: 1},
	}
}

func TestCampaignInjectedFaultAttributedToVector(t *testing.T) {
	fx := setup(t, measSrc, "f")
	plan, _ := fx.planAndInputs(t)
	data := fx.allInputs(t)
	for _, workers := range []int{1, 4} {
		ctx := faults.With(context.Background(),
			faults.New(faults.Rule{Site: "measure.run", Index: 1}))
		res, err := CampaignCtx(ctx, plan, fx.vm, data, workers)
		if res != nil || err == nil {
			t.Fatalf("workers=%d: injected fault not surfaced: (%v, %v)", workers, res, err)
		}
		if !errors.Is(err, fail.ErrInfrastructure) {
			t.Errorf("workers=%d: got %v, want infrastructure failure", workers, err)
		}
		if !strings.Contains(err.Error(), "vector 1") {
			t.Errorf("workers=%d: error %q not attributed to vector 1", workers, err)
		}
	}
}

func TestCampaignErrorDeterministicAcrossWorkers(t *testing.T) {
	fx := setup(t, measSrc, "f")
	plan, _ := fx.planAndInputs(t)
	data := fx.allInputs(t)
	run := func(workers int) string {
		// Two armed faults: the lower-indexed one must win regardless of
		// which worker reaches which vector first.
		ctx := faults.With(context.Background(), faults.New(
			faults.Rule{Site: "measure.run", Index: 5},
			faults.Rule{Site: "measure.run", Index: 2}))
		_, err := CampaignCtx(ctx, plan, fx.vm, data, workers)
		if err == nil {
			t.Fatalf("workers=%d: no error", workers)
		}
		return err.Error()
	}
	serial := run(1)
	if !strings.Contains(serial, "vector 2") {
		t.Fatalf("serial error %q must blame the lowest-indexed fault", serial)
	}
	for i := 0; i < 5; i++ {
		if p := run(4); p != serial {
			t.Fatalf("error differs across workers:\n  1: %s\n  4: %s", serial, p)
		}
	}
}

func TestCampaignInjectedPanicIsolated(t *testing.T) {
	fx := setup(t, measSrc, "f")
	plan, _ := fx.planAndInputs(t)
	data := fx.allInputs(t)
	ctx := faults.With(context.Background(),
		faults.New(faults.Rule{Site: "measure.run", Index: 3, Mode: faults.Panic}))
	_, err := CampaignCtx(ctx, plan, fx.vm, data, 4)
	if !errors.Is(err, fail.ErrWorkerPanic) {
		t.Fatalf("got %v, want ErrWorkerPanic", err)
	}
	var fe *fail.Error
	if !errors.As(err, &fe) || len(fe.Stack) == 0 {
		t.Error("panic error must carry the worker stack")
	}
}

func TestCampaignCancelled(t *testing.T) {
	fx := setup(t, measSrc, "f")
	plan, _ := fx.planAndInputs(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := CampaignCtx(ctx, plan, fx.vm, fx.allInputs(t), 4); !errors.Is(err, fail.ErrCancelled) {
		t.Errorf("cancelled campaign: got %v, want ErrCancelled", err)
	}
}

func TestExhaustiveInjectedFault(t *testing.T) {
	fx := setup(t, measSrc, "f")
	ctx := faults.With(context.Background(),
		faults.New(faults.Rule{Site: "measure.exhaustive", Index: 0}))
	if _, err := ExhaustiveMaxCtx(ctx, fx.vm, fx.allInputs(t), 2); err == nil ||
		!strings.Contains(err.Error(), "vector 0") {
		t.Errorf("exhaustive fault: got %v, want vector-0 attribution", err)
	}
}

// TestCampaignStallThatCompletesIsInvisible pins the stall site for the
// measurement stage: a short stall at campaign entry delays the campaign
// but must not change its result in any way.
func TestCampaignStallThatCompletesIsInvisible(t *testing.T) {
	fx := setup(t, measSrc, "f")
	plan, _ := fx.planAndInputs(t)
	data := fx.allInputs(t)
	clean, err := CampaignCtx(context.Background(), plan, fx.vm, data, 4)
	if err != nil {
		t.Fatal(err)
	}
	ctx := faults.With(context.Background(), faults.New(
		faults.Rule{Site: "measure.campaign", Index: 0, Mode: faults.Stall, Delay: time.Millisecond}))
	stalled, err := CampaignCtx(ctx, plan, fx.vm, data, 4)
	if err != nil {
		t.Fatalf("completed stall must be invisible: %v", err)
	}
	if !reflect.DeepEqual(clean, stalled) {
		t.Error("stall that completed changed the campaign result")
	}
}

// TestCampaignStallExpiredDeadlineIsBudget: a stalled campaign entry whose
// context deadline expires must surface as a spent budget, the signature
// deadline-driven callers (and the retry policy) key on.
func TestCampaignStallExpiredDeadlineIsBudget(t *testing.T) {
	fx := setup(t, measSrc, "f")
	plan, _ := fx.planAndInputs(t)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	ctx = faults.With(ctx, faults.New(
		faults.Rule{Site: "measure.campaign", Index: 0, Mode: faults.Stall, Delay: 10 * time.Second}))
	_, err := CampaignCtx(ctx, plan, fx.vm, fx.allInputs(t), 4)
	if !errors.Is(err, fail.ErrBudgetExceeded) {
		t.Errorf("stalled campaign past its deadline: got %v, want ErrBudgetExceeded", err)
	}
}

// TestCampaignJournalResumeSkipsSimulator: a journaled campaign replayed
// into a fresh run reproduces the identical result without touching the
// simulator — pinned by arming a fault at every replay site: if any
// simulator run happened, the campaign would fail.
func TestCampaignJournalResumeSkipsSimulator(t *testing.T) {
	fx := setup(t, measSrc, "f")
	plan, _ := fx.planAndInputs(t)
	data := fx.allInputs(t)
	j, err := journal.Open(filepath.Join(t.TempDir(), "j"))
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	jctx := journal.With(context.Background(), j)
	first, err := CampaignTagged(jctx, "t", plan, fx.vm, data, 4, retry.Policy{})
	if err != nil {
		t.Fatal(err)
	}
	rctx := faults.With(jctx, faults.New(faults.Rule{Site: "measure.run", Index: -1}))
	resumed, err := CampaignTagged(rctx, "t", plan, fx.vm, data, 4, retry.Policy{})
	if err != nil {
		t.Fatalf("replayed campaign ran the simulator: %v", err)
	}
	if !reflect.DeepEqual(first, resumed) {
		t.Error("replayed campaign result differs from the original")
	}
}

// TestExhaustiveJournalResumeSkipsSimulator is the exhaustive-sweep
// counterpart.
func TestExhaustiveJournalResumeSkipsSimulator(t *testing.T) {
	fx := setup(t, measSrc, "f")
	data := fx.allInputs(t)
	j, err := journal.Open(filepath.Join(t.TempDir(), "j"))
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	jctx := journal.With(context.Background(), j)
	first, err := ExhaustiveMaxTagged(jctx, "x", fx.vm, data, 4, retry.Policy{})
	if err != nil {
		t.Fatal(err)
	}
	rctx := faults.With(jctx, faults.New(faults.Rule{Site: "measure.exhaustive", Index: -1}))
	resumed, err := ExhaustiveMaxTagged(rctx, "x", fx.vm, data, 4, retry.Policy{})
	if err != nil {
		t.Fatalf("replayed sweep ran the simulator: %v", err)
	}
	if first != resumed {
		t.Errorf("replayed exhaustive max %d != original %d", resumed, first)
	}
}

// TestCampaignTransientFaultHealedByRetry: a MaxFires-bounded infrastructure
// fault on one vector is retried and the campaign result matches a clean
// run exactly.
func TestCampaignTransientFaultHealedByRetry(t *testing.T) {
	fx := setup(t, measSrc, "f")
	plan, _ := fx.planAndInputs(t)
	data := fx.allInputs(t)
	clean, err := CampaignCtx(context.Background(), plan, fx.vm, data, 4)
	if err != nil {
		t.Fatal(err)
	}
	ctx := faults.With(context.Background(), faults.New(
		faults.Rule{Site: "measure.run", Index: 2, MaxFires: 2,
			Err: fail.Infra("measure", errors.New("injected transient"))}))
	healed, err := CampaignTagged(ctx, "", plan, fx.vm, data, 4, retry.Policy{})
	if err != nil {
		t.Fatalf("transient fault within the attempt budget must heal: %v", err)
	}
	if !reflect.DeepEqual(clean, healed) {
		t.Error("healed campaign result differs from clean run")
	}
}

// TestFailedCampaignsLeakNoGoroutines drives every failure mode — fault,
// panic, cancellation — repeatedly and checks the goroutine count settles
// back, so a long-running analysis service can absorb failed campaigns.
func TestFailedCampaignsLeakNoGoroutines(t *testing.T) {
	fx := setup(t, measSrc, "f")
	plan, _ := fx.planAndInputs(t)
	data := fx.allInputs(t)
	before := runtime.NumGoroutine()
	for round := 0; round < 10; round++ {
		ctx := faults.With(context.Background(),
			faults.New(faults.Rule{Site: "measure.run", Index: 1}))
		CampaignCtx(ctx, plan, fx.vm, data, 4)
		ctx = faults.With(context.Background(),
			faults.New(faults.Rule{Site: "measure.run", Index: 0, Mode: faults.Panic}))
		CampaignCtx(ctx, plan, fx.vm, data, 4)
		cctx, cancel := context.WithCancel(context.Background())
		cancel()
		CampaignCtx(cctx, plan, fx.vm, data, 4)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines: %d before, %d after failed campaigns", before, runtime.NumGoroutine())
}
