// Package measure is the measurement subsystem: it executes generated test
// data on the cycle-accurate simulator and aggregates, per unit of the
// instrumentation plan, the maximum observed execution time.
//
// A unit's time is the cycle delta between its entry observation point and
// the first observation point outside it — exactly what the paper obtains
// from its start/stop cycle-counter instrumentation on the HCS12 board.
package measure

import (
	"context"
	"fmt"
	"strconv"

	"wcet/internal/cc/ast"
	"wcet/internal/cfg"
	"wcet/internal/fail"
	"wcet/internal/faults"
	"wcet/internal/interp"
	"wcet/internal/journal"
	"wcet/internal/obs"
	"wcet/internal/par"
	"wcet/internal/partition"
	"wcet/internal/retry"
	"wcet/internal/sim"
)

// traceRecord is the journaled form of one simulator replay: the block
// events and total that Observe folds, nothing more. Replaying a record
// reproduces the identical accumulator contribution without touching the
// simulator.
type traceRecord struct {
	Events []sim.BlockEvent
	Total  int64
}

// measKey addresses one vector of a tagged campaign in the run journal.
func measKey(tag string, i int) string { return "meas/" + tag + "/" + strconv.Itoa(i) }

// Key exposes the journal key of one tagged campaign vector — the unit
// identity the distributed ledger leases out.
func Key(tag string, i int) string { return measKey(tag, i) }

// MissingKeys lists the journal keys of the campaign's un-replayed vectors
// in vector order, using non-hit-counting reads — the distributed
// coordinator's frontier probe for a measurement stage over n vectors.
func MissingKeys(j *journal.Journal, tag string, n int) []string {
	var missing []string
	for i := 0; i < n; i++ {
		if !j.Has(measKey(tag, i)) {
			missing = append(missing, measKey(tag, i))
		}
	}
	return missing
}

// UnitTime aggregates observations for one plan unit.
type UnitTime struct {
	Unit partition.Unit
	// Max is the worst observed execution time in cycles (-1: never seen).
	Max int64
	// Samples counts observations.
	Samples int
	// PerPath records, for whole-segment units, the worst time per internal
	// path key (block id sequence) — coverage bookkeeping.
	PerPath map[string]int64
}

// Result of a measurement campaign.
type Result struct {
	Plan  *partition.Plan
	Times []UnitTime
	// Runs counts simulator executions.
	Runs int
}

// Covered reports whether every unit has at least one observation.
func (r *Result) Covered() bool {
	for _, t := range r.Times {
		if t.Samples == 0 {
			return false
		}
	}
	return true
}

// UnitMax returns the maximum for the i-th plan unit (-1 when unobserved).
func (r *Result) UnitMax(i int) int64 { return r.Times[i].Max }

// Campaign runs every test vector and aggregates unit times.
//
// The optional workers argument fans replays out over a bounded worker
// pool, one simulator clone and one accumulator per worker; the final fold
// (max per unit and path, summed samples) is order-insensitive, so the
// Result is identical for every worker count. Omitted or 1 runs serially;
// 0 uses one worker per CPU.
func Campaign(plan *partition.Plan, vm *sim.VM, data []interp.Env, workers ...int) (*Result, error) {
	w := 1
	if len(workers) > 0 {
		w = par.Workers(workers[0])
	}
	return CampaignCtx(context.Background(), plan, vm, data, w)
}

// CampaignCtx is Campaign under a context: cancellation stops the replays
// cooperatively (fail.ErrCancelled; an expired deadline maps to
// fail.ErrBudgetExceeded), a faulting simulator run surfaces exactly one
// attributed error — deterministically the lowest-indexed failing vector —
// and a panicking replay worker is isolated into fail.ErrWorkerPanic. The
// pool joins every worker before returning, so a failed campaign leaks no
// goroutines.
func CampaignCtx(ctx context.Context, plan *partition.Plan, vm *sim.VM, data []interp.Env, workers int) (*Result, error) {
	return CampaignTagged(ctx, "", plan, vm, data, workers, retry.Policy{})
}

// CampaignTagged is CampaignCtx with durability: a non-empty tag names the
// campaign in the run journal ("meas/<tag>/<vector>"), so each finished
// replay is one durable unit — an interrupted campaign resumes by folding
// journaled traces instead of re-running the simulator, with identical
// accumulator contributions and metrics. Transient per-vector failures
// retry under pol; a vector that exhausts its attempts fails the campaign
// with the same lowest-index-wins attribution as before.
func CampaignTagged(ctx context.Context, tag string, plan *partition.Plan, vm *sim.VM,
	data []interp.Env, workers int, pol retry.Policy) (*Result, error) {

	// The campaign-entry site exists so tests can stall or fail the stage
	// as a whole (index 0), not just individual replays.
	if ferr := faults.Fire(ctx, "measure.campaign", 0); ferr != nil {
		return nil, fail.Attribute(fail.From("measure", ferr), "measure", "")
	}
	w := par.Workers(workers)
	o := obs.From(ctx)
	j := journal.From(ctx)
	scope := journal.ScopeFrom(ctx)
	accs := make([]*Result, w)
	err := par.ForEachWorkerCtx(ctx, len(data), w, func(worker int) func(context.Context, int) error {
		wvm := vm.Clone()
		acc := newResult(plan)
		accs[worker] = acc
		ow := o.Worker(worker)
		return func(ctx context.Context, i int) error {
			observe := func(tr *sim.Trace) {
				acc.Runs++
				acc.Observe(tr)
				// The vector set and each run's cycle count are deterministic;
				// histogram buckets fold commutatively across workers.
				ow.Count("measure.runs", 1)
				ow.Hist("measure.cycles", tr.Total)
			}
			if tag != "" {
				var rec traceRecord
				if j.GetJSON(measKey(tag, i), &rec) {
					observe(&sim.Trace{Events: rec.Events, Total: rec.Total})
					o.Count("measure.journal.replayed", 1)
					ow.Emit(obs.BusEvent{Kind: obs.EvUnitCompleted, Stage: "measure/" + tag,
						Unit: measKey(tag, i), Detail: "replayed"})
					return nil
				}
				if !scope.Owns(measKey(tag, i)) {
					// A sibling worker's vector: its trace reaches this run, if
					// at all, only as a merged journal record. The local
					// accumulator is incomplete, which only matters to reports
					// assembled here — and a scoped worker's report is discarded.
					return nil
				}
			}
			var tr *sim.Trace
			_, err := retry.Do(ctx, pol, func(attempt int) error {
				if ferr := faults.Fire(ctx, "measure.run", i); ferr != nil {
					return fail.Attribute(fail.From("measure", ferr), "measure", vectorPath(i))
				}
				var rerr error
				tr, rerr = wvm.Run(data[i].Clone())
				if rerr != nil {
					return fail.Attribute(fail.Infra("measure", fmt.Errorf("run failed: %w", rerr)),
						"measure", vectorPath(i))
				}
				return nil
			})
			if err != nil {
				return err
			}
			if tag != "" {
				_ = j.PutJSON(measKey(tag, i), &traceRecord{Events: tr.Events, Total: tr.Total})
				ow.Emit(obs.BusEvent{Kind: obs.EvUnitCompleted, Stage: "measure/" + tag,
					Unit: measKey(tag, i), Detail: fmt.Sprintf("cycles=%d", tr.Total)})
			}
			observe(tr)
			return nil
		}
	})
	if err != nil {
		return nil, fail.Attribute(err, "measure", "")
	}
	res := newResult(plan)
	for _, acc := range accs {
		if acc != nil {
			res.merge(acc)
		}
	}
	return res, nil
}

// vectorPath renders the ledger attribution of one test vector.
func vectorPath(i int) string { return fmt.Sprintf("vector %d", i) }

func newResult(plan *partition.Plan) *Result {
	res := &Result{Plan: plan}
	res.Times = make([]UnitTime, len(plan.Units))
	for i, u := range plan.Units {
		res.Times[i] = UnitTime{Unit: u, Max: -1, PerPath: map[string]int64{}}
	}
	return res
}

// Merge folds another campaign over the same plan into r — the degraded-
// mode fallback uses it to widen a partial campaign with exhaustive runs.
// Maxima are commutative and associative, so merge order cannot change the
// outcome.
func (r *Result) Merge(o *Result) { r.merge(o) }

// merge folds another campaign over the same plan into r. Maxima and
// per-path maxima are commutative and associative, so merge order does not
// affect the result.
func (r *Result) merge(o *Result) {
	r.Runs += o.Runs
	for i := range r.Times {
		a, b := &r.Times[i], &o.Times[i]
		a.Samples += b.Samples
		if b.Max > a.Max {
			a.Max = b.Max
		}
		for k, v := range b.PerPath {
			if v > a.PerPath[k] {
				a.PerPath[k] = v
			}
		}
	}
}

// Observe folds one simulator trace into the aggregates.
func (r *Result) Observe(tr *sim.Trace) {
	events := tr.Events
	for ui := range r.Times {
		ut := &r.Times[ui]
		switch ut.Unit.Kind {
		case partition.SingleBlock:
			for i, ev := range events {
				if ev.Block != ut.Unit.Block {
					continue
				}
				end := tr.Total
				if i+1 < len(events) {
					end = events[i+1].Cycle
				}
				d := end - ev.Cycle
				ut.observe("", d)
			}
		case partition.WholePS:
			set := ut.Unit.PS.Region.Set
			entry := ut.Unit.PS.Region.Entry
			for i := 0; i < len(events); i++ {
				if events[i].Block != entry {
					continue
				}
				// Follow until the trace leaves the region.
				j := i + 1
				key := blockKey(events[i].Block)
				for j < len(events) && set[events[j].Block] {
					key += "-" + blockKey(events[j].Block)
					j++
				}
				end := tr.Total
				if j < len(events) {
					end = events[j].Cycle
				}
				ut.observe(key, end-events[i].Cycle)
				i = j - 1
			}
		}
	}
}

func (ut *UnitTime) observe(pathKey string, d int64) {
	ut.Samples++
	if d > ut.Max {
		ut.Max = d
	}
	if pathKey != "" {
		if d > ut.PerPath[pathKey] {
			ut.PerPath[pathKey] = d
		}
	}
}

func blockKey(id cfg.NodeID) string { return fmt.Sprintf("%d", id) }

// ExhaustiveMax runs every environment and returns the maximum end-to-end
// time — the ground truth the paper obtains from exhaustive end-to-end
// measurement on small input spaces. The optional workers argument
// parallelises the runs as in Campaign; max-folding makes the result
// independent of the worker count.
func ExhaustiveMax(vm *sim.VM, data []interp.Env, workers ...int) (int64, error) {
	w := 1
	if len(workers) > 0 {
		w = par.Workers(workers[0])
	}
	return ExhaustiveMaxCtx(context.Background(), vm, data, w)
}

// ExhaustiveMaxCtx is ExhaustiveMax under a context, with the same
// cancellation, attribution and panic-isolation contract as CampaignCtx.
func ExhaustiveMaxCtx(ctx context.Context, vm *sim.VM, data []interp.Env, workers int) (int64, error) {
	return ExhaustiveMaxTagged(ctx, "", vm, data, workers, retry.Policy{})
}

// ExhaustiveMaxTagged is ExhaustiveMaxCtx with durability and retry, the
// exhaustive-sweep counterpart of CampaignTagged. Only each run's total is
// journaled — the end-to-end maximum needs nothing else.
func ExhaustiveMaxTagged(ctx context.Context, tag string, vm *sim.VM,
	data []interp.Env, workers int, pol retry.Policy) (int64, error) {

	w := par.Workers(workers)
	o := obs.From(ctx)
	j := journal.From(ctx)
	scope := journal.ScopeFrom(ctx)
	maxes := make([]int64, w)
	for i := range maxes {
		maxes[i] = -1
	}
	err := par.ForEachWorkerCtx(ctx, len(data), w, func(worker int) func(context.Context, int) error {
		wvm := vm.Clone()
		ow := o.Worker(worker)
		return func(ctx context.Context, i int) error {
			observe := func(total int64) {
				if total > maxes[worker] {
					maxes[worker] = total
				}
				ow.Count("measure.exhaustive.runs", 1)
				ow.Hist("measure.exhaustive.cycles", total)
			}
			if tag != "" {
				var total int64
				if j.GetJSON(measKey(tag, i), &total) {
					observe(total)
					o.Count("measure.journal.replayed", 1)
					ow.Emit(obs.BusEvent{Kind: obs.EvUnitCompleted, Stage: "measure/" + tag,
						Unit: measKey(tag, i), Detail: "replayed"})
					return nil
				}
				if !scope.Owns(measKey(tag, i)) {
					return nil
				}
			}
			var tr *sim.Trace
			_, err := retry.Do(ctx, pol, func(attempt int) error {
				if ferr := faults.Fire(ctx, "measure.exhaustive", i); ferr != nil {
					return fail.Attribute(fail.From("measure", ferr), "measure", vectorPath(i))
				}
				var rerr error
				tr, rerr = wvm.Run(data[i].Clone())
				if rerr != nil {
					return fail.Attribute(fail.Infra("measure", fmt.Errorf("run failed: %w", rerr)),
						"measure", vectorPath(i))
				}
				return nil
			})
			if err != nil {
				return err
			}
			if tag != "" {
				_ = j.PutJSON(measKey(tag, i), tr.Total)
				ow.Emit(obs.BusEvent{Kind: obs.EvUnitCompleted, Stage: "measure/" + tag,
					Unit: measKey(tag, i), Detail: fmt.Sprintf("cycles=%d", tr.Total)})
			}
			observe(tr.Total)
			return nil
		}
	})
	if err != nil {
		return 0, fail.Attribute(err, "measure", "")
	}
	var max int64 = -1
	for _, m := range maxes {
		if m > max {
			max = m
		}
	}
	o.SetMax("measure.exhaustive.max_cycles", max)
	return max, nil
}

// EnumerateInputs builds the full cross product of the given input domains
// (each variable uses its annotation range or type range), erroring out
// beyond the cap. Base supplies fixed non-input values.
func EnumerateInputs(vars []InputVar, base interp.Env, cap int) ([]interp.Env, error) {
	total := 1
	for _, v := range vars {
		span := v.Hi - v.Lo + 1
		if span <= 0 || total > cap/int(span)+1 {
			total = cap + 1
			break
		}
		total *= int(span)
	}
	if total > cap {
		return nil, fmt.Errorf("measure: input space too large (> %d)", cap)
	}
	envs := []interp.Env{base.Clone()}
	for _, v := range vars {
		var next []interp.Env
		for _, e := range envs {
			for val := v.Lo; val <= v.Hi; val++ {
				ne := e.Clone()
				ne[v.Decl] = val
				next = append(next, ne)
			}
		}
		envs = next
	}
	return envs, nil
}

// InputVar is one enumerable input dimension.
type InputVar struct {
	Decl   *ast.VarDecl
	Lo, Hi int64
}
