module wcet

go 1.22
