// Package wcet is a hybrid measurement-based worst-case execution time
// (WCET) analyser for a C subset, reproducing Wenzel, Rieder, Kirner and
// Puschner, "Automatic Timing Model Generation by CFG Partitioning and
// Model Checking" (DATE 2005).
//
// The analysis partitions a function's control flow graph into program
// segments along the abstract syntax tree, generates test data that forces
// execution of every segment path — first with a genetic algorithm, then
// with a BDD-based model checker that also proves infeasibility — measures
// the forced runs on a cycle-accurate HCS12-flavoured simulator, and
// combines the per-segment maxima into a WCET bound with a timing schema.
//
// Quick start:
//
//	report, err := wcet.Analyze(src, wcet.Options{Bound: 8, Exhaustive: true})
//	if err != nil { ... }
//	fmt.Println(report.WCET, report.ExhaustiveWCET)
//
// The pipeline's parallel stages (GA searches, model-checker calls,
// measurement replays) fan out over Options.Workers goroutines — one per
// CPU by default, 1 for a serial run — and merge deterministically: the
// Report is identical for every worker count.
//
// The building blocks (partitioning sweeps, the model checker, the
// optimisation passes, the simulator) are exposed through the internal
// packages for the example programs and benchmarks in this repository; the
// stable external surface is this package.
package wcet

import (
	"wcet/internal/core"
	"wcet/internal/ga"
	"wcet/internal/mc"
	"wcet/internal/testgen"
)

// Options configure an analysis; the zero value uses sensible defaults
// (path bound 8, hybrid generation with model-checker fallback).
type Options = core.Options

// Report is the complete analysis result.
type Report = core.Report

// GAConfig tunes the heuristic test-data stage.
type GAConfig = ga.Config

// TestGenConfig tunes the hybrid test-data generator.
type TestGenConfig = testgen.Config

// MCOptions bound individual model-checker runs.
type MCOptions = mc.Options

// Verdict classifies per-path generation outcomes.
type Verdict = testgen.Verdict

// Per-path verdicts.
const (
	FoundByHeuristic    = testgen.FoundByHeuristic
	FoundByModelChecker = testgen.FoundByModelChecker
	Infeasible          = testgen.Infeasible
	Unknown             = testgen.Unknown
)

// Analyze runs the full hybrid WCET analysis on C source text.
func Analyze(src string, opt Options) (*Report, error) {
	return core.Analyze(src, opt)
}
