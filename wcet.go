// Package wcet is a hybrid measurement-based worst-case execution time
// (WCET) analyser for a C subset, reproducing Wenzel, Rieder, Kirner and
// Puschner, "Automatic Timing Model Generation by CFG Partitioning and
// Model Checking" (DATE 2005).
//
// The analysis partitions a function's control flow graph into program
// segments along the abstract syntax tree, generates test data that forces
// execution of every segment path — first with a genetic algorithm, then
// with a BDD-based model checker that also proves infeasibility — measures
// the forced runs on a cycle-accurate HCS12-flavoured simulator, and
// combines the per-segment maxima into a WCET bound with a timing schema.
//
// Quick start:
//
//	report, err := wcet.Analyze(src, wcet.Options{Bound: 8, Exhaustive: true})
//	if err != nil { ... }
//	fmt.Println(report.WCET, report.ExhaustiveWCET)
//
// The pipeline's parallel stages (GA searches, model-checker calls,
// measurement replays) fan out over Options.Workers goroutines — one per
// CPU by default, 1 for a serial run — and merge deterministically: the
// Report is identical for every worker count.
//
// # Budgets, cancellation and degraded results
//
// AnalyzeCtx runs the same pipeline under a context: cancelling it (or
// letting its deadline expire) unwinds every stage cooperatively and
// returns an error matching ErrCancelled or ErrBudgetExceeded
// (errors.Is). Per-stage budgets — model-checker step, state and BDD-node
// caps plus a per-call timeout, and a GA evaluation cap — never abort the
// analysis on their own: a path whose generation ran out of budget is
// recorded in the Report's degradation ledger, and Report.Soundness states
// whether the bound is still exact, safe-but-degraded (an exhaustive input
// sweep restored coverage), or unavailable. See Report.Summary.
//
// # Distributed runs
//
// Distribute shards a journaled analysis across worker processes: a
// coordinator computes the unresolved work frontier, leases unit keys to
// workers, harvests their journals (first write wins) and assembles the
// final report from the canonical journal — byte-identical to a
// single-process run by construction. Workers can be SIGKILLed at any
// instant and the coordinator itself restarted mid-run; units that
// repeatedly kill their worker are quarantined into the degradation
// ledger instead of hanging the run. See NewLedgerSpec, Distribute and
// LedgerWorker.
//
// The building blocks (partitioning sweeps, the model checker, the
// optimisation passes, the simulator) are exposed through the internal
// packages for the example programs and benchmarks in this repository; the
// stable external surface is this package.
package wcet

import (
	"context"

	"wcet/internal/core"
	"wcet/internal/fail"
	"wcet/internal/ga"
	"wcet/internal/journal"
	"wcet/internal/ledger"
	"wcet/internal/mc"
	"wcet/internal/obs"
	"wcet/internal/obs/serve"
	"wcet/internal/remote"
	"wcet/internal/testgen"
	"wcet/internal/vcache"
)

// Options configure an analysis; the zero value uses sensible defaults
// (path bound 8, hybrid generation with model-checker fallback).
type Options = core.Options

// Report is the complete analysis result.
type Report = core.Report

// Soundness classifies how much trust the computed bound deserves.
type Soundness = core.Soundness

// Soundness levels.
const (
	BoundExact        = core.BoundExact
	BoundDegradedSafe = core.BoundDegradedSafe
	BoundUnavailable  = core.BoundUnavailable
)

// Degradation is one entry of the report's degradation ledger.
type Degradation = core.Degradation

// GAConfig tunes the heuristic test-data stage.
type GAConfig = ga.Config

// TestGenConfig tunes the hybrid test-data generator.
type TestGenConfig = testgen.Config

// MCOptions bound individual model-checker runs.
type MCOptions = mc.Options

// Observer is the observability session threaded through an analysis via
// Options.Obs: stage spans, a metrics registry with deterministic
// aggregation, and progress output. nil disables observation (the
// default); see NewObserver.
type Observer = obs.Observer

// ObserverConfig configures NewObserver.
type ObserverConfig = obs.Config

// NewObserver builds an enabled observation session. After the analysis,
// export with Observer.Trace().WriteChrome (chrome://tracing format),
// Observer.Metrics().WriteSnapshotAll (full metrics JSON), or the
// canonical variants whose bytes are identical for every Workers value.
func NewObserver(c ObserverConfig) *Observer { return obs.New(c) }

// BusEvent is one structured event on the observer's live event bus:
// stage transitions, unit lifecycle (leased/completed/retried/
// quarantined), model-checker verdicts, degradations, worker spawns and
// exits, and progress lines. Subscribe via Observer.Subscribe; slow
// subscribers drop oldest events rather than stalling the analysis.
type BusEvent = obs.BusEvent

// Status is the live snapshot served at /status: a deterministic half
// (stage frontier and per-stage done/total counts, a pure function of the
// journal's records) and a volatile half (elapsed time, bus counters,
// per-worker fleet telemetry).
type Status = obs.Status

// WorkerStatus is one worker's row in a distributed run's fleet
// telemetry.
type WorkerStatus = obs.WorkerStatus

// StatusConfig wires a status server to one observed run.
type StatusConfig = serve.Config

// StatusServer is a running live-status HTTP server: /status (JSON),
// /metrics (Prometheus text), /events (SSE), /debug/pprof.
type StatusServer = serve.Server

// ServeStatus starts the live-status HTTP server on addr (use
// "127.0.0.1:0" for an ephemeral port). Serving is read-only and never
// perturbs the analysis: canonical reports are byte-identical with and
// without a server attached.
func ServeStatus(addr string, c StatusConfig) (*StatusServer, error) { return serve.Start(addr, c) }

// JournalStatus builds the deterministic /status closure for one
// journaled analysis: each call snapshots the journal file lock-free
// (the run may hold its flock) and recomputes stage progress from the
// records. Use it as StatusConfig.Status.
func JournalStatus(src string, opt Options, journalPath string) (func() (*Status, error), error) {
	return core.JournalStatusFunc(src, opt, journalPath)
}

// FleetStatus reads the per-worker telemetry sidecars of a distributed
// run from its work directory (by default the canonical journal's
// directory). Use it as StatusConfig.Fleet.
func FleetStatus(workDir string) []WorkerStatus { return ledger.ReadFleet(workDir) }

// WriteCrashFile dumps a flight-recorder snapshot (Observer.FlightDump)
// to path atomically — the post-mortem written next to the journal when
// a run panics or a distributed unit is quarantined.
func WriteCrashFile(path, reason string, flight []string) error {
	return obs.WriteCrash(path, reason, flight)
}

// Journal is the crash-safe run journal threaded through an analysis via
// Options.Journal: every completed unit of work (GA search, model-checker
// verdict, measurement, partition point) is appended durably before the
// pipeline moves on, so a killed run resumed against the same journal
// replays finished units and converges to a report byte-identical to an
// uninterrupted run — at any worker count. nil disables journaling (the
// default); see OpenJournal.
type Journal = journal.Journal

// OpenJournal opens (or creates) the run journal at path, recovering
// cleanly from a torn tail left by a crash mid-append. Close it after the
// analysis; to discard a previous run's records instead of resuming them,
// call Reset before analysing.
func OpenJournal(path string) (*Journal, error) { return journal.Open(path) }

// Cache is the persistent verdict store threaded through an analysis via
// Options.Cache: per-path model-checker verdicts and GA outcomes are
// memoized on disk under content-addressed keys, so re-analysing a program
// — or an edited version of it — replays every verdict whose underlying
// query the edit left untouched instead of re-proving it. The model-checker
// keys digest the optimized, per-trap-sliced transition system, so an edit
// in one CFG region leaves the other regions' verdicts servable from cache.
// A warm run's Report is byte-identical (Report.WriteCanonical) to a clean
// run's; Report.CachedUnits says how much was replayed. nil disables
// caching (the default); see OpenCache.
type Cache = vcache.Store

// OpenCache opens (or creates) the verdict store rooted at dir. The store
// is safe for concurrent use and survives crashes (records are written
// atomically); a store written by an incompatible format version is reset
// to empty. Share one directory across runs — and across programs — to make
// every analysis incremental.
func OpenCache(dir string) (*Cache, error) { return vcache.Open(dir) }

// Verdict classifies per-path generation outcomes.
type Verdict = testgen.Verdict

// Per-path verdicts.
const (
	FoundByHeuristic    = testgen.FoundByHeuristic
	FoundByModelChecker = testgen.FoundByModelChecker
	Infeasible          = testgen.Infeasible
	Unknown             = testgen.Unknown
)

// Structured failure kinds: every pipeline error matches exactly one of
// these under errors.Is, with stage and path attribution in its message.
var (
	// ErrBudgetExceeded: a stage ran out of its wall-clock, step, state,
	// node or evaluation budget.
	ErrBudgetExceeded = fail.ErrBudgetExceeded
	// ErrCancelled: the caller's context was cancelled.
	ErrCancelled = fail.ErrCancelled
	// ErrWorkerPanic: a pipeline worker panicked; the error carries the
	// recovered value and stack, isolated instead of crashing the process.
	ErrWorkerPanic = fail.ErrWorkerPanic
	// ErrInfrastructure: the pipeline itself failed (simulator fault,
	// inconsistent model) — distinct from running out of budget.
	ErrInfrastructure = fail.ErrInfrastructure
)

// Interrupted reports whether err is a budget or cancellation stop rather
// than an infrastructure failure.
func Interrupted(err error) bool { return fail.Interrupted(err) }

// LedgerSpec is the serializable description of one analysis that a
// distributed coordinator ships to its worker processes — the source text
// plus every deterministic option. Build one with NewLedgerSpec.
type LedgerSpec = ledger.Spec

// LedgerConfig tunes a distributed run: canonical journal path, worker
// count, how workers are launched, and the lease/quarantine thresholds.
// The zero value (plus JournalPath) is usable.
type LedgerConfig = ledger.Config

// LedgerResult is a distributed run's outcome: the assembled report, the
// quarantined unit keys, and fault-tolerance counters.
type LedgerResult = ledger.Result

// LedgerLauncher starts distributed workers on behalf of the coordinator;
// see LedgerConfig.Launcher. The default launches workers as goroutines
// inside the coordinator process.
type LedgerLauncher = ledger.Launcher

// ProcessLauncher returns a launcher that starts each worker as a real OS
// process running argv plus the assignment-file path — crash isolation
// with genuine SIGKILL semantics. The wcet command uses it with its own
// binary and the hidden -ledger-worker flag.
func ProcessLauncher(argv ...string) LedgerLauncher {
	return &ledger.ProcLauncher{Command: argv}
}

// RemoteLauncher leases distributed workers onto wcet agents on other
// machines (see StartRemoteAgent) and streams their journals back over
// TCP, so LedgerConfig.Launcher can span hosts: torn connections are
// resumed from the last verified frame, a host that stays unreachable
// through the reconnect budget is marked down and its units re-leased —
// onto the remaining agents, or onto the Fallback launcher when none are
// left. Reports stay byte-identical to a local run throughout.
type RemoteLauncher = remote.Launcher

// RemoteAgent serves leased worker shards to RemoteLauncher coordinators
// on other machines — the wcet command's hidden -ledger-agent mode.
type RemoteAgent = remote.Agent

// RemoteAgentConfig configures how a RemoteAgent spawns its workers.
type RemoteAgentConfig = remote.AgentConfig

// RemoteHost is one agent's fleet state as surfaced on /status — see
// StatusConfig.Remote and RemoteLauncher.Hosts.
type RemoteHost = obs.RemoteHost

// StartRemoteAgent binds a remote execution agent on addr and serves
// until Close. Workers spawn per AgentConfig.Exec; their journals and
// telemetry stream back to whichever coordinator holds the lease.
func StartRemoteAgent(addr string, cfg RemoteAgentConfig) (*RemoteAgent, error) {
	return remote.StartAgent(addr, cfg)
}

// NewLedgerSpec builds the distributable spec for analysing src under
// opt. It errors on options that cannot cross a process boundary (runtime
// hooks, a custom cost model, an attached journal or cache — the
// coordinator owns those).
func NewLedgerSpec(src string, opt Options) (LedgerSpec, error) {
	return ledger.SpecFor(src, opt)
}

// Distribute runs the analysis described by spec across worker processes
// (or goroutines — see LedgerConfig.Launcher). The resulting report is
// byte-identical (Report.WriteCanonical) to a single-process run: every
// journaled unit is a pure function of (program, options, unit key), so
// shard boundaries, worker deaths and merge order cannot change it.
func Distribute(ctx context.Context, spec LedgerSpec, cfg LedgerConfig) (*LedgerResult, error) {
	return ledger.Run(ctx, spec, cfg)
}

// LedgerWorker executes one coordinator-written assignment file to
// completion — the entry point a worker process calls (the wcet command's
// hidden -ledger-worker flag). It returns nil exactly when every leased
// unit has a durable record in the worker's journal.
func LedgerWorker(ctx context.Context, assignmentPath string) error {
	return ledger.RunWorker(ctx, assignmentPath, ledger.WorkerOptions{})
}

// Analyze runs the full hybrid WCET analysis on C source text.
func Analyze(src string, opt Options) (*Report, error) {
	return core.Analyze(src, opt)
}

// AnalyzeCtx is Analyze under a context: cancellation and deadlines unwind
// the whole pipeline cooperatively.
func AnalyzeCtx(ctx context.Context, src string, opt Options) (*Report, error) {
	return core.AnalyzeCtx(ctx, src, opt)
}
