package wcet

import (
	"bytes"
	"net/http"
	"testing"
	"time"

	"wcet/internal/ga"
	"wcet/internal/model"
	"wcet/internal/testgen"
)

// BenchmarkLiveTelemetry measures what the live-telemetry surface costs on
// the Section 4 wiper pipeline: an observed run with a bare observer
// versus one whose observer carries the full -status surface — a running
// HTTP server and one SSE subscriber that connects and then never reads a
// byte, the worst-case consumer (its ring overflows immediately and every
// publish pays the drop-oldest path). The two legs run interleaved (bare,
// live, bare, live, …) so machine drift cancels out of the ratio. The
// overhead-% metric — the live legs' wall time over the bare legs', minus
// one — must stay under 2%: events are one mutex acquisition and a ring
// write, never a blocking send. Each iteration asserts the two canonical
// reports are byte-identical — serving telemetry must not perturb the
// analysis.
func BenchmarkLiveTelemetry(b *testing.B) {
	src := model.Wiper().Emit("wiper_control")
	tg := testgen.Config{
		GA:       ga.Config{Seed: 2005, Pop: 48, MaxGens: 80, Stagnation: 20},
		Optimise: true,
	}
	run := func(ob *Observer) *Report {
		rep, err := Analyze(src, Options{
			FuncName:   "wiper_control",
			Bound:      8,
			Exhaustive: true,
			Obs:        ob,
			TestGen:    tg,
		})
		if err != nil {
			b.Fatal(err)
		}
		return rep
	}
	canonical := func(rep *Report) []byte {
		var buf bytes.Buffer
		if err := rep.WriteCanonical(&buf); err != nil {
			b.Fatal(err)
		}
		return buf.Bytes()
	}

	bare := NewObserver(ObserverConfig{})
	live := NewObserver(ObserverConfig{})
	srv, err := ServeStatus("127.0.0.1:0", StatusConfig{Observer: live, EventBuffer: 64})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/events")
	if err != nil {
		b.Fatal(err)
	}
	defer resp.Body.Close() // subscribed, never read: the stalled consumer

	run(nil) // warm-up: first run pays parser/GA cache misses
	var bareT, liveT time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		repBare := run(bare)
		t1 := time.Now()
		repLive := run(live)
		liveT += time.Since(t1)
		bareT += t1.Sub(t0)
		if !bytes.Equal(canonical(repBare), canonical(repLive)) {
			b.Fatal("canonical report perturbed by the live telemetry surface")
		}
	}
	b.ReportMetric(float64(bareT.Nanoseconds())/float64(b.N), "bare-ns/op")
	b.ReportMetric(float64(liveT.Nanoseconds())/float64(b.N), "live-ns/op")
	b.ReportMetric((liveT.Seconds()/bareT.Seconds()-1)*100, "overhead-%")
}
