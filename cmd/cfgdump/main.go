// Command cfgdump inspects the front half of the pipeline: it parses a C
// file, prints the CFG (optionally as Graphviz DOT), the program-segment
// tree, and the Table 1-style measurement-effort table over path bounds.
//
//	cfgdump [-func name] [-dot] [-tree] [-table maxBound] file.c
//	cfgdump -fig1            # the paper's Figure 1 example
//
// All results go to stdout; errors and diagnostics go to stderr, so DOT
// output can be piped straight into graphviz.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"wcet/internal/cc/parser"
	"wcet/internal/cfg"
	"wcet/internal/experiments"
	"wcet/internal/partition"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cfgdump: ")
	funcName := flag.String("func", "", "function to inspect (default: first)")
	dot := flag.Bool("dot", false, "print the CFG in DOT syntax")
	tree := flag.Bool("tree", false, "print the program-segment tree")
	table := flag.Int64("table", 8, "print ip/m for path bounds 1..n (0 to skip)")
	fig1 := flag.Bool("fig1", false, "use the paper's Figure 1 example instead of a file")
	flag.Parse()

	var src, name string
	switch {
	case *fig1:
		src, name = experiments.Figure1Source, "main"
	case flag.NArg() == 1:
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		src, name = string(data), *funcName
	default:
		fmt.Fprintln(os.Stderr, "usage: cfgdump [flags] file.c | cfgdump -fig1")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if name == "" {
		name = firstFunc(src)
	}
	g, err := experiments.BuildGraph(src, name)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("function %s: %d blocks, %d decisions, %s paths\n",
		name, g.NumNodes(), g.CondBranches(), cfg.WholeFunction(g).PathCount())
	if *dot {
		fmt.Println(g.Dot())
	}
	psTree, err := partition.BuildTree(g)
	if err != nil {
		log.Fatal(err)
	}
	if *tree {
		fmt.Println("program segments:")
		fmt.Print(psTree)
	}
	if *table > 0 {
		fmt.Println("Bound b | Instr. Points ip | Measurements m")
		for b := int64(1); b <= *table; b++ {
			plan := partition.Partition(g, psTree, cfg.NewCount(b))
			fmt.Printf("%7d | %16d | %14s\n", b, plan.IP, plan.M)
		}
	}
}

// firstFunc returns the first function defined in the source.
func firstFunc(src string) string {
	f, err := parser.ParseFile("input.c", src)
	if err != nil {
		log.Fatal(err)
	}
	if len(f.Funcs) == 0 {
		log.Fatal("no function in file")
	}
	return f.Funcs[0].Name
}
