// Command benchlog appends the result of a `go test -bench` run to a JSON
// benchmark log, so successive runs accumulate a machine-readable history:
//
//	go test -bench 'Parallel' -benchtime 3x . | go run ./cmd/benchlog -out BENCH_1.json
//
// Each invocation parses the benchmark lines from stdin (name, iterations,
// ns/op, and every custom metric such as the parallel suite's speedup),
// wraps them with the run's date, Go version, and GOMAXPROCS, and appends
// one entry to the JSON array in -out (created when absent). Lines that are
// not benchmark results pass through to stdout unchanged, so the tool can
// sit at the end of a pipe without hiding the test output.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Entry is one appended run.
type Entry struct {
	Date       string      `json:"date"`
	GoVersion  string      `json:"go_version"`
	GOMAXPROCS int         `json:"gomaxprocs"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "BENCH_1.json", "JSON log file to append to")
	flag.Parse()

	benches, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchlog:", err)
		os.Exit(1)
	}
	if len(benches) == 0 {
		fmt.Fprintln(os.Stderr, "benchlog: no benchmark lines on stdin; log unchanged")
		return
	}
	entry := Entry{
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Benchmarks: benches,
	}
	if err := appendEntry(*out, entry); err != nil {
		fmt.Fprintln(os.Stderr, "benchlog:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchlog: appended %d benchmarks to %s\n", len(benches), *out)
}

// parse scans stdin for benchmark result lines of the form
//
//	BenchmarkName-8   	      12	  98765 ns/op	  3.14 speedup	 2.0 other
//
// echoing every line to stdout.
func parse(r *os.File) ([]Benchmark, error) {
	var out []Benchmark
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name, iteration count, then value/unit pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{Name: fields[0], Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			unit := fields[i+1]
			if unit == "ns/op" {
				b.NsPerOp = v
				continue
			}
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = v
		}
		out = append(out, b)
	}
	return out, sc.Err()
}

// appendEntry does a read-modify-write of the JSON array in path.
func appendEntry(path string, e Entry) error {
	var log []Entry
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &log); err != nil {
			return fmt.Errorf("%s exists but is not a benchlog array: %v", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	log = append(log, e)
	data, err := json.MarshalIndent(log, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
