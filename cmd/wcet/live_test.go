package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// runCapture invokes the CLI in-process with stdout captured, returning
// the exit code and the report bytes — the byte-identity assertions
// compare these across flag combinations.
func runCapture(t *testing.T, args ...string) (int, []byte) {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = w
	var buf bytes.Buffer
	done := make(chan struct{})
	go func() {
		io.Copy(&buf, r)
		close(done)
	}()
	code := run(args)
	os.Stdout = old
	w.Close()
	<-done
	r.Close()
	return code, buf.Bytes()
}

// TestExportsWrittenOnEveryExitCode pins the export contract: -metrics
// and -trace files are written as valid JSON on success AND on every
// failure exit the observer lives to see — a degraded or crashed run is
// exactly when you want its telemetry.
func TestExportsWrittenOnEveryExitCode(t *testing.T) {
	src := writeSmokeSrc(t)
	brokenSrc := filepath.Join(t.TempDir(), "broken.c")
	if err := os.WriteFile(brokenSrc, []byte("int f(void) { return 1 + ; }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	jdir := t.TempDir()
	seeded := filepath.Join(jdir, "seed.journal")
	if got := runQuiet(t, "-journal", seeded, src); got != exitOK {
		t.Fatalf("seeding journal: exit %d", got)
	}

	cases := []struct {
		name string
		args []string
		want int
	}{
		{"ok", []string{src}, exitOK},
		{"error (parse failure)", []string{brokenSrc}, exitError},
		{"degraded (timeout)", []string{"-timeout", "1ns", src}, exitDegraded},
		{"resumed", []string{"-journal", seeded, "-resume", src}, exitResumed},
	}
	for _, c := range cases {
		dir := t.TempDir()
		metrics := filepath.Join(dir, "m.json")
		trace := filepath.Join(dir, "t.json")
		args := append([]string{"-metrics", metrics, "-trace", trace}, c.args...)
		if got := runQuiet(t, args...); got != c.want {
			t.Errorf("%s: exit %d, want %d", c.name, got, c.want)
			continue
		}
		for _, p := range []string{metrics, trace} {
			data, err := os.ReadFile(p)
			if err != nil {
				t.Errorf("%s: export %s not written: %v", c.name, filepath.Base(p), err)
				continue
			}
			if !json.Valid(data) {
				t.Errorf("%s: export %s is not valid JSON (%d bytes)", c.name, filepath.Base(p), len(data))
			}
		}
	}
}

// liveSrc is slow enough (three ranged inputs, a loop, exhaustive
// measurement) that the live endpoints can be scraped mid-run.
const liveSrc = `
/*@ input */ /*@ range 0 15 */ int a;
/*@ input */ /*@ range 0 15 */ int b;
/*@ input */ /*@ range 0 7 */ int c;
int r;
void f(void) {
    int i;
    r = 0;
    /*@ loopbound 8 */ for (i = 0; i < 8; i = i + 1) {
        if (a > i) { r = r + a; } else { r = r - 1; }
    }
    if (b > 3) { r = r + b; }
    if (c > 1) { r = r + c; } else { r = r - c; }
}
`

// TestLiveStatusDistributedRun is the acceptance drive for -status: a
// distributed run serves /status (JSON with the deterministic stage
// frontier), /metrics (Prometheus text) and /events (SSE unit lifecycle)
// while analysing, and its stdout report is byte-identical to the same
// run without -status.
func TestLiveStatusDistributedRun(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "live.c")
	if err := os.WriteFile(src, []byte(liveSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	addrFile := filepath.Join(dir, "addr.txt")
	j1 := filepath.Join(t.TempDir(), "run.journal")

	type result struct {
		code int
		out  []byte
	}
	resCh := make(chan result, 1)
	go func() {
		code, out := runCapture(t, "-distribute", "2", "-exhaustive",
			"-journal", j1, "-status", "127.0.0.1:0", "-status-addr-file", addrFile, src)
		resCh <- result{code, out}
	}()

	// The address file is written before the analysis starts.
	var addr string
	for i := 0; i < 200; i++ {
		if data, err := os.ReadFile(addrFile); err == nil && len(data) > 0 {
			addr = string(data)
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if addr == "" {
		t.Fatal("status server never published its address")
	}

	// SSE: subscribe for the whole run and collect event kinds.
	kinds := make(chan map[string]int, 1)
	go func() {
		seen := map[string]int{}
		defer func() { kinds <- seen }()
		resp, err := http.Get("http://" + addr + "/events")
		if err != nil {
			return
		}
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			if line := sc.Text(); strings.HasPrefix(line, "event: ") {
				seen[strings.TrimPrefix(line, "event: ")]++
			}
		}
	}()

	// Scrape /status and /metrics until each succeeds once (the run is
	// seconds long; a scrape takes milliseconds).
	var statusOK, metricsOK bool
	var lastStatus []byte
	for !(statusOK && metricsOK) {
		select {
		case res := <-resCh:
			t.Fatalf("run finished (exit %d) before live scrapes succeeded (status=%v metrics=%v)",
				res.code, statusOK, metricsOK)
		default:
		}
		if !statusOK {
			if resp, err := http.Get("http://" + addr + "/status"); err == nil {
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				var st struct {
					Deterministic struct {
						Fingerprint string `json:"fingerprint"`
					} `json:"deterministic"`
				}
				if json.Unmarshal(body, &st) == nil && st.Deterministic.Fingerprint != "" {
					statusOK, lastStatus = true, body
				}
			}
		}
		if !metricsOK {
			if resp, err := http.Get("http://" + addr + "/metrics"); err == nil {
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if strings.Contains(string(body), "# TYPE wcet_ledger_workers_spawned counter") {
					metricsOK = true
				}
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !json.Valid(lastStatus) {
		t.Errorf("/status response is not JSON:\n%s", lastStatus)
	}

	res := <-resCh
	if res.code != exitOK {
		t.Fatalf("distributed -status run: exit %d, want %d", res.code, exitOK)
	}
	seen := <-kinds
	for _, want := range []string{"worker.spawned", "unit.leased", "worker.exited"} {
		if seen[want] == 0 {
			t.Errorf("SSE stream never carried %q (saw %v)", want, seen)
		}
	}

	// Byte-identity: the same distributed run without -status must print
	// the identical report.
	j2 := filepath.Join(t.TempDir(), "run.journal")
	code, plain := runCapture(t, "-distribute", "2", "-exhaustive", "-journal", j2, src)
	if code != exitOK {
		t.Fatalf("reference run: exit %d", code)
	}
	if !bytes.Equal(res.out, plain) {
		t.Errorf("report differs with -status attached:\n--- with status\n%s\n--- without\n%s", res.out, plain)
	}
}
