package main

import (
	"os"
	"path/filepath"
	"testing"

	"wcet"
)

// TestMain doubles as the CLI's re-exec entry points: coordinators under
// test spawn workers by re-execing this binary with -ledger-worker,
// remote-agent smoke tests start whole agent processes with -ledger-agent,
// and signal tests run the entire CLI as a child via WCET_CLI_MAIN=1. Each
// shim routes straight into run() before the test framework parses flags.
func TestMain(m *testing.M) {
	switch {
	case os.Getenv("WCET_CLI_MAIN") == "1":
		os.Exit(run(os.Args[1:]))
	case len(os.Args) >= 3 && (os.Args[1] == "-ledger-worker" || os.Args[1] == "-ledger-agent"):
		os.Exit(run(os.Args[1:]))
	}
	os.Exit(m.Run())
}

const smokeSrc = `
/*@ input */ /*@ range 0 3 */ int a;
int r;
void f(void) {
    if (a > 1) { r = 1; } else { r = 2; }
}
`

func writeSmokeSrc(t *testing.T) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "smoke.c")
	if err := os.WriteFile(p, []byte(smokeSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

// runQuiet invokes the CLI in-process with stdout discarded, returning the
// exit code. Diagnostics still go to stderr where test output belongs.
func runQuiet(t *testing.T, args ...string) int {
	t.Helper()
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = devnull
	defer func() {
		os.Stdout = old
		devnull.Close()
	}()
	return run(args)
}

func TestUsageErrors(t *testing.T) {
	src := writeSmokeSrc(t)
	j := filepath.Join(t.TempDir(), "run.journal")
	cases := []struct {
		name string
		args []string
	}{
		{"no source file", nil},
		{"resume without journal", []string{"-resume", src}},
		{"distribute without journal", []string{"-distribute", "2", src}},
		{"distribute with watch", []string{"-distribute", "2", "-journal", j, "-watch", src}},
		{"distribute with cache", []string{"-distribute", "2", "-journal", j, "-cache", t.TempDir(), src}},
		{"watch with journal", []string{"-watch", "-journal", j, src}},
		{"agents without distribute", []string{"-agents", "127.0.0.1:1", src}},
	}
	for _, c := range cases {
		if got := runQuiet(t, c.args...); got != exitUsage {
			t.Errorf("%s: exit %d, want %d", c.name, got, exitUsage)
		}
	}
}

func TestJournalRunThenResume(t *testing.T) {
	src := writeSmokeSrc(t)
	j := filepath.Join(t.TempDir(), "run.journal")
	if got := runQuiet(t, "-journal", j, src); got != exitOK {
		t.Fatalf("journaled run: exit %d, want %d", got, exitOK)
	}
	if got := runQuiet(t, "-journal", j, "-resume", src); got != exitResumed {
		t.Errorf("resumed run: exit %d, want %d", got, exitResumed)
	}
}

func TestTimeoutExitsDegraded(t *testing.T) {
	src := writeSmokeSrc(t)
	if got := runQuiet(t, "-timeout", "1ns", src); got != exitDegraded {
		t.Errorf("timed-out run: exit %d, want %d", got, exitDegraded)
	}
}

// TestDistributeSmoke drives the real multi-process path end to end: the
// coordinator spawns two worker processes (this test binary re-exec'd via
// the TestMain shim), and a second invocation with -resume replays the
// finished journal.
func TestDistributeSmoke(t *testing.T) {
	src := writeSmokeSrc(t)
	j := filepath.Join(t.TempDir(), "run.journal")
	if got := runQuiet(t, "-distribute", "2", "-journal", j, src); got != exitOK {
		t.Fatalf("distributed run: exit %d, want %d", got, exitOK)
	}
	if got := runQuiet(t, "-distribute", "2", "-journal", j, "-resume", src); got != exitResumed {
		t.Errorf("resumed distributed run: exit %d, want %d", got, exitResumed)
	}
}

// TestDistExitCodePrecedence pins the documented severity order:
// 5 (quarantined) over 3 (degraded) over 4 (resumed) over 0.
func TestDistExitCodePrecedence(t *testing.T) {
	exact := &wcet.Report{Soundness: wcet.BoundExact}
	degraded := &wcet.Report{Soundness: wcet.BoundDegradedSafe}
	cases := []struct {
		name    string
		res     *wcet.LedgerResult
		resumed bool
		want    int
	}{
		{"quarantine beats everything", &wcet.LedgerResult{Report: degraded, Quarantined: []string{"tg/x"}}, true, exitQuarantined},
		{"degraded beats resumed", &wcet.LedgerResult{Report: degraded}, true, exitDegraded},
		{"resumed beats ok", &wcet.LedgerResult{Report: exact}, true, exitResumed},
		{"clean exact run", &wcet.LedgerResult{Report: exact}, false, exitOK},
	}
	for _, c := range cases {
		if got := distExitCode(c.res, c.resumed); got != c.want {
			t.Errorf("%s: exit %d, want %d", c.name, got, c.want)
		}
	}
}
