package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

// startAgent launches one -ledger-agent process of this test binary on an
// ephemeral port and returns its command and published address. Agents
// only exit on a signal; cleanup SIGTERMs them.
func startAgent(t *testing.T, dir, name string) (*exec.Cmd, string) {
	t.Helper()
	self, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	addrFile := filepath.Join(dir, name+".addr")
	cmd := exec.Command(self, "-ledger-agent", "127.0.0.1:0", "-agent-addr-file", addrFile)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Signal(syscall.SIGTERM)
		_ = cmd.Wait()
	})
	deadline := time.Now().Add(30 * time.Second)
	for {
		if data, err := os.ReadFile(addrFile); err == nil && len(data) > 0 {
			return cmd, string(data)
		}
		if time.Now().After(deadline) {
			t.Fatalf("agent %s never published its address", name)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRemoteAgentsSmoke drives the -agents path end to end over loopback:
// two real -ledger-agent processes serve the leases, the coordinator runs
// in-process, and a SIGTERMed agent exits cleanly through the normal path.
func TestRemoteAgentsSmoke(t *testing.T) {
	src := writeSmokeSrc(t)
	dir := t.TempDir()
	agent0, addr0 := startAgent(t, dir, "a0")
	_, addr1 := startAgent(t, dir, "a1")

	j := filepath.Join(dir, "run.journal")
	if got := runQuiet(t, "-distribute", "2", "-journal", j,
		"-agents", addr0+","+addr1, src); got != exitOK {
		t.Fatalf("remote distributed run: exit %d, want %d", got, exitOK)
	}
	if got := runQuiet(t, "-distribute", "2", "-journal", j, "-resume",
		"-agents", addr0+","+addr1, src); got != exitResumed {
		t.Errorf("resumed remote run: exit %d, want %d", got, exitResumed)
	}

	// Graceful agent shutdown: SIGTERM must exit 0, not die by signal.
	if err := agent0.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := agent0.Wait(); err != nil {
		t.Errorf("SIGTERMed agent did not exit cleanly: %v", err)
	}
}

// TestSigtermWritesArtifacts pins the signal contract: SIGTERM mid-run
// exits through the normal path (code 3, interrupted), with the -trace and
// -metrics exports written and everything journaled so far still durable.
func TestSigtermWritesArtifacts(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "live.c")
	if err := os.WriteFile(src, []byte(liveSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	j := filepath.Join(dir, "run.journal")
	traceF := filepath.Join(dir, "t.json")
	metricsF := filepath.Join(dir, "m.json")
	self, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(self, "-exhaustive", "-journal", j,
		"-trace", traceF, "-metrics", metricsF, src)
	cmd.Env = append(os.Environ(), "WCET_CLI_MAIN=1")
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Wait for durable progress so the signal lands mid-analysis, then
	// SIGTERM.
	deadline := time.Now().Add(time.Minute)
	for {
		if fi, err := os.Stat(j); err == nil && fi.Size() > 0 {
			break
		}
		if time.Now().After(deadline) {
			_ = cmd.Process.Kill()
			t.Fatal("journal never grew — the run did not start")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	err = cmd.Wait()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != exitDegraded {
		t.Fatalf("SIGTERMed run exited %v, want exit code %d through the normal path", err, exitDegraded)
	}
	for _, p := range []string{traceF, metricsF} {
		data, rerr := os.ReadFile(p)
		if rerr != nil {
			t.Errorf("artifact %s not written on SIGTERM: %v", filepath.Base(p), rerr)
			continue
		}
		if !json.Valid(data) {
			t.Errorf("artifact %s is not valid JSON (%d bytes)", filepath.Base(p), len(data))
		}
	}
	if fi, err := os.Stat(j); err != nil || fi.Size() == 0 {
		t.Errorf("journal lost on SIGTERM: %v", err)
	}
}
