// Command wcet runs the complete hybrid measurement-based WCET analysis on
// a C source file:
//
//	wcet [-func name] [-bound b] [-exhaustive] [-seed n] [-v] file.c
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"wcet"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("wcet: ")
	funcName := flag.String("func", "", "function to analyse (default: first in file)")
	bound := flag.Int64("bound", 8, "path bound b: segments with at most b paths are measured whole")
	exhaustive := flag.Bool("exhaustive", false, "also measure every input vector end to end")
	seed := flag.Int64("seed", 1, "seed for the genetic test-data search")
	workers := flag.Int("workers", 0, "parallel analysis workers (0 = one per CPU, 1 = serial); results are identical for every value")
	verbose := flag.Bool("v", false, "print per-path test-data verdicts")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: wcet [flags] file.c")
		flag.PrintDefaults()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	report, err := wcet.Analyze(string(src), wcet.Options{
		FuncName:   *funcName,
		Bound:      *bound,
		Exhaustive: *exhaustive,
		Workers:    *workers,
		TestGen: wcet.TestGenConfig{
			GA:       wcet.GAConfig{Seed: *seed},
			Optimise: true,
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("function               : %s\n", report.Fn.Name)
	fmt.Printf("basic blocks           : %d\n", report.G.NumNodes())
	fmt.Printf("path bound b           : %d\n", *bound)
	fmt.Printf("instrumentation points : %d (fused: %d)\n", report.Plan.IP, report.Plan.IPFused())
	fmt.Printf("measurements           : %s\n", report.Plan.M)
	fmt.Printf("test data              : %s\n", report.TestGen.Summary())
	fmt.Printf("infeasible paths       : %d\n", report.InfeasiblePaths)
	fmt.Printf("WCET bound             : %d cycles\n", report.WCET)
	if report.ExhaustiveWCET >= 0 {
		fmt.Printf("exhaustive WCET        : %d cycles\n", report.ExhaustiveWCET)
		fmt.Printf("overestimation         : %.1f%%\n", report.Overestimate()*100)
	}
	if *verbose {
		fmt.Println("\nper-path verdicts:")
		for _, r := range report.TestGen.Results {
			fmt.Printf("  %-14s %s\n", r.Verdict, r.Path.Key())
		}
	}
}
