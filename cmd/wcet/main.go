// Command wcet runs the complete hybrid measurement-based WCET analysis on
// a C source file:
//
//	wcet [-func name] [-bound b] [-exhaustive] [-seed n] [-timeout d] [-mc-timeout d] [-v] file.c
//
// Exit codes:
//
//	0  analysis completed with an exact bound
//	1  usage error (bad flags or arguments)
//	2  parse, semantic or infrastructure error
//	3  analysis interrupted (timeout/cancellation) or bound degraded/unavailable
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"wcet"
)

const (
	exitOK       = 0
	exitUsage    = 1
	exitError    = 2
	exitDegraded = 3
)

func main() { os.Exit(run()) }

func run() int {
	fs := flag.NewFlagSet("wcet", flag.ContinueOnError)
	funcName := fs.String("func", "", "function to analyse (default: first in file)")
	bound := fs.Int64("bound", 8, "path bound b: segments with at most b paths are measured whole")
	exhaustive := fs.Bool("exhaustive", false, "also measure every input vector end to end")
	seed := fs.Int64("seed", 1, "seed for the genetic test-data search")
	workers := fs.Int("workers", 0, "parallel analysis workers (0 = one per CPU, 1 = serial); results are identical for every value")
	timeout := fs.Duration("timeout", 0, "wall-clock budget for the whole analysis (0 = none)")
	mcTimeout := fs.Duration("mc-timeout", 0, "wall-clock budget per model-checker call (0 = none); an expired call degrades its path instead of failing the run")
	verbose := fs.Bool("v", false, "print per-path test-data verdicts")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: wcet [flags] file.c")
		fs.PrintDefaults()
	}
	if err := fs.Parse(os.Args[1:]); err != nil {
		return exitUsage
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return exitUsage
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "wcet:", err)
		return exitError
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	report, err := wcet.AnalyzeCtx(ctx, string(src), wcet.Options{
		FuncName:   *funcName,
		Bound:      *bound,
		Exhaustive: *exhaustive,
		Workers:    *workers,
		MCTimeout:  *mcTimeout,
		TestGen: wcet.TestGenConfig{
			GA:       wcet.GAConfig{Seed: *seed},
			Optimise: true,
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "wcet:", err)
		if wcet.Interrupted(err) {
			return exitDegraded
		}
		return exitError
	}

	fmt.Printf("function               : %s\n", report.Fn.Name)
	fmt.Printf("basic blocks           : %d\n", report.G.NumNodes())
	fmt.Printf("path bound b           : %d\n", *bound)
	fmt.Printf("instrumentation points : %d (fused: %d)\n", report.Plan.IP, report.Plan.IPFused())
	fmt.Printf("measurements           : %s\n", report.Plan.M)
	fmt.Printf("test data              : %s\n", report.TestGen.Summary())
	fmt.Printf("infeasible paths       : %d\n", report.InfeasiblePaths)
	fmt.Printf("soundness              : %s\n", report.Soundness)
	if report.WCET >= 0 {
		fmt.Printf("WCET bound             : %d cycles\n", report.WCET)
	} else {
		fmt.Printf("WCET bound             : unavailable\n")
	}
	if report.ExhaustiveWCET >= 0 {
		fmt.Printf("exhaustive WCET        : %d cycles\n", report.ExhaustiveWCET)
		fmt.Printf("overestimation         : %.1f%%\n", report.Overestimate()*100)
	}
	if len(report.Degradations) > 0 {
		fmt.Println(report.Summary())
	}
	if *verbose {
		fmt.Println("\nper-path verdicts:")
		for _, r := range report.TestGen.Results {
			fmt.Printf("  %-14s %s\n", r.Verdict, r.Path.Key())
		}
	}
	if report.Soundness != wcet.BoundExact {
		return exitDegraded
	}
	return exitOK
}
