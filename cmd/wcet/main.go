// Command wcet runs the complete hybrid measurement-based WCET analysis on
// a C source file:
//
//	wcet [-func name] [-bound b] [-exhaustive] [-seed n] [-timeout d] [-mc-timeout d]
//	     [-journal file] [-resume] [-distribute n] [-agents addrs] [-cache dir]
//	     [-watch] [-v] [-trace file] [-metrics file] [-status addr] [-pprof addr]
//	     file.c
//
// The analysis report goes to stdout; diagnostics, errors and -v progress go
// to stderr, so results stay pipeable. -trace writes a Chrome trace-event
// file (load in chrome://tracing or https://ui.perfetto.dev), -metrics
// writes the metrics registry as JSON, and -pprof serves net/http/pprof on
// the given address for live CPU/heap profiling. Trace and metrics files are
// written even when the analysis fails or panics, so a degraded run can be
// diagnosed.
//
// -journal makes the run durable: every completed unit of work is appended
// to the journal file before the pipeline moves on, so a run killed at any
// point can be re-invoked with -resume to replay the finished units and
// converge on the identical report. Without -resume a pre-existing journal
// is discarded for a clean start.
//
// -cache makes re-analysis incremental: per-path model-checker verdicts and
// GA outcomes are memoized in the given directory under content-addressed
// keys. The model-checker keys digest the optimized, per-trap-sliced
// transition system, so after an edit only the paths whose sliced query the
// edit actually touched are re-proved — everything else is served from the
// cache, and the report is byte-for-byte what a clean run would produce.
// The report says how many verdicts were served from cache versus
// re-proved; -v marks each cached path verdict.
//
// -distribute n runs the analysis as n worker processes under a
// fault-tolerant coordinator (requires -journal: the journal file is the
// shared work ledger). The coordinator leases unresolved work units to
// workers, harvests completed records from their journals — first write
// wins — and assembles the report from the canonical journal, so the
// result is byte-identical to a single-process run. Workers may be killed
// at any instant (their leases are reclaimed and re-assigned); killing
// the coordinator and re-invoking the same command resumes the run like
// -resume. A unit that repeatedly kills its workers is quarantined into
// the degradation ledger instead of hanging the run. -distribute is
// incompatible with -watch and -cache (the journal is the only shared
// store). The hidden -ledger-worker flag is the worker entry point the
// coordinator spawns; it is not meant for interactive use.
//
// -agents spans the distributed run across machines: each comma-separated
// address names a wcet agent started on another host with the hidden
// -ledger-agent mode (wcet -ledger-agent :9400), and -distribute n leases
// its n workers round-robin onto the live agents, streaming their
// journals back over TCP. A torn connection is resumed from the last
// verified frame; an agent that stays unreachable through the reconnect
// budget is marked down (visible under "remote" in /status) and its units
// re-leased onto the remaining agents — or onto local worker processes
// when every agent is down, so the run completes degraded-but-correct on
// one machine. The report stays byte-identical to a local run throughout.
// A two-machine run over loopback looks like:
//
//	wcet -ledger-agent 127.0.0.1:9400 &
//	wcet -ledger-agent 127.0.0.1:9401 &
//	wcet -journal run.journal -distribute 4 \
//	     -agents 127.0.0.1:9400,127.0.0.1:9401 file.c
//
// -status serves live run telemetry over HTTP while the analysis runs:
// GET /status returns a JSON snapshot (deterministic stage progress
// recomputed from the journal plus volatile elapsed/bus/fleet counters),
// GET /metrics the registry in Prometheus text exposition format,
// GET /events a Server-Sent-Events stream of the structured event bus
// (stage transitions, unit lifecycle, verdicts, worker spawns/exits), and
// /debug/pprof the usual profiles. The server is read-only and never
// perturbs the analysis — a stalled /events consumer drops events instead
// of stalling the pipeline, and the report is byte-identical with and
// without -status. With -distribute, /status aggregates the per-worker
// telemetry sidecars into a fleet view. Try:
//
//	wcet -journal run.journal -distribute 4 -status localhost:8080 file.c &
//	curl -s localhost:8080/status | head
//	curl -N localhost:8080/events
//
// On a panic — and when a distributed run quarantines a unit — the flight
// recorder (the last events preceding the failure) is dumped to a .crash
// file next to the journal.
//
// -watch re-runs the analysis whenever the source file changes (polled;
// ctrl-c stops). Combined with -cache this is an edit-analyze loop where
// each iteration re-proves only the regions the edit touched. -watch is
// incompatible with -journal: a journal is bound to one program identity,
// which is exactly what an edit changes.
//
// SIGINT and SIGTERM interrupt the analysis through the normal exit path:
// everything already journaled stays durable, -trace and -metrics files
// are still written, and the process exits 3 (interrupted) rather than
// dying with artifacts half-missing.
//
// Exit codes:
//
//	0  analysis completed with an exact bound
//	1  usage error (bad flags or arguments)
//	2  parse, semantic or infrastructure error, or an escaped panic
//	3  analysis interrupted (timeout/cancellation) or bound degraded/unavailable
//	4  analysis completed with an exact bound, partly replayed from a journal
//	5  distributed run completed, but work units that repeatedly killed
//	   their workers were quarantined — the bound is degraded or unavailable
//
// When several codes apply the most severe wins: 5 over 3 over 4 over 0.
// In -watch mode the process runs until interrupted and exits with the code
// of the last completed analysis.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"runtime/debug"
	"strings"
	"syscall"
	"time"

	"wcet"
)

const (
	exitOK          = 0
	exitUsage       = 1
	exitError       = 2
	exitDegraded    = 3
	exitResumed     = 4
	exitQuarantined = 5
)

func main() { os.Exit(run(os.Args[1:])) }

func run(args []string) (code int) {
	// Catch any panic that escapes the pipeline's isolation so the exit
	// code stays meaningful — and, because this defer is registered first,
	// the trace/metrics exports below it still run during the unwind. The
	// observer and crash path are declared up here so the unwind can dump
	// the flight recorder (the last events before the panic) next to the
	// journal.
	var ob *wcet.Observer
	var crashPath string
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintf(os.Stderr, "wcet: panic: %v\n%s", r, debug.Stack())
			if crashPath != "" {
				if werr := wcet.WriteCrashFile(crashPath, fmt.Sprintf("panic: %v", r), ob.FlightDump()); werr == nil {
					fmt.Fprintf(os.Stderr, "wcet: flight recorder dumped to %s\n", crashPath)
				}
			}
			code = exitError
		}
	}()
	fs := flag.NewFlagSet("wcet", flag.ContinueOnError)
	funcName := fs.String("func", "", "function to analyse (default: first in file)")
	bound := fs.Int64("bound", 8, "path bound b: segments with at most b paths are measured whole")
	exhaustive := fs.Bool("exhaustive", false, "also measure every input vector end to end")
	seed := fs.Int64("seed", 1, "seed for the genetic test-data search")
	workers := fs.Int("workers", 0, "parallel analysis workers (0 = one per CPU, 1 = serial); results are identical for every value")
	timeout := fs.Duration("timeout", 0, "wall-clock budget for the whole analysis (0 = none)")
	mcTimeout := fs.Duration("mc-timeout", 0, "wall-clock budget per model-checker call (0 = none); an expired call degrades its path instead of failing the run")
	noSlice := fs.Bool("no-slice", false, "disable the per-trap program slice before model checking (A/B baseline)")
	noReorder := fs.Bool("no-reorder", false, "disable dynamic BDD variable reordering in the symbolic engine (A/B baseline)")
	noPool := fs.Bool("no-pool", false, "allocate a fresh BDD manager per model-checker call instead of pooling (A/B baseline)")
	journalFile := fs.String("journal", "", "append completed work units to this crash-safe journal; a killed run can be resumed with -resume")
	resume := fs.Bool("resume", false, "replay finished units from the -journal file instead of discarding them")
	cacheDir := fs.String("cache", "", "memoize per-path verdicts in this directory; later runs (of this or an edited program) replay verdicts whose sliced query is unchanged")
	distribute := fs.Int("distribute", 0, "run the analysis across this many worker processes under a fault-tolerant coordinator (requires -journal)")
	agents := fs.String("agents", "", "comma-separated remote agent addresses to lease -distribute workers onto; falls back to local processes when every agent is down")
	ledgerWorker := fs.String("ledger-worker", "", "internal: run one distributed-worker assignment file and exit (spawned by -distribute)")
	ledgerAgent := fs.String("ledger-agent", "", "internal: serve this address as a remote execution agent until SIGINT/SIGTERM (leased onto by -agents coordinators)")
	agentAddrFile := fs.String("agent-addr-file", "", "internal: write the agent's bound address to this file (test hook for ephemeral ports)")
	watch := fs.Bool("watch", false, "re-run the analysis whenever the source file changes (best with -cache)")
	verbose := fs.Bool("v", false, "print per-path test-data verdicts (stdout) and stage progress (stderr)")
	traceFile := fs.String("trace", "", "write a Chrome trace-event file of the pipeline stages")
	metricsFile := fs.String("metrics", "", "write the metrics registry (counters, gauges, histograms) as JSON")
	statusAddr := fs.String("status", "", "serve live run telemetry on this address (e.g. localhost:8080): /status, /metrics, /events, /debug/pprof")
	statusAddrFile := fs.String("status-addr-file", "", "internal: write the bound -status address to this file (test hook for ephemeral ports)")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) during the analysis")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: wcet [flags] file.c")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if *ledgerWorker != "" {
		// Worker mode: the whole process is one leased shard. Signals still
		// cancel cleanly; everything already journaled survives regardless.
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		if err := wcet.LedgerWorker(ctx, *ledgerWorker); err != nil {
			fmt.Fprintln(os.Stderr, "wcet:", err)
			return exitError
		}
		return exitOK
	}
	if *ledgerAgent != "" {
		return runAgent(*ledgerAgent, *agentAddrFile)
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return exitUsage
	}
	if *resume && *journalFile == "" {
		fmt.Fprintln(os.Stderr, "wcet: -resume requires -journal")
		return exitUsage
	}
	if *watch && *journalFile != "" {
		fmt.Fprintln(os.Stderr, "wcet: -watch is incompatible with -journal (a journal is bound to one program identity)")
		return exitUsage
	}
	if *distribute > 0 {
		switch {
		case *journalFile == "":
			fmt.Fprintln(os.Stderr, "wcet: -distribute requires -journal (the journal file is the shared work ledger)")
			return exitUsage
		case *watch:
			fmt.Fprintln(os.Stderr, "wcet: -distribute is incompatible with -watch")
			return exitUsage
		case *cacheDir != "":
			fmt.Fprintln(os.Stderr, "wcet: -distribute is incompatible with -cache (the journal is the only store shared with workers)")
			return exitUsage
		}
	}
	if *agents != "" && *distribute == 0 {
		fmt.Fprintln(os.Stderr, "wcet: -agents requires -distribute (agents serve leased distributed workers)")
		return exitUsage
	}
	srcPath := fs.Arg(0)
	src, err := os.ReadFile(srcPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wcet:", err)
		return exitError
	}
	var jnl *wcet.Journal
	var resumedPrior bool
	if *journalFile != "" {
		if jnl, err = wcet.OpenJournal(*journalFile); err != nil {
			fmt.Fprintln(os.Stderr, "wcet:", err)
			return exitError
		}
		if !*resume {
			if err := jnl.Reset(); err != nil {
				jnl.Close()
				fmt.Fprintln(os.Stderr, "wcet:", err)
				return exitError
			}
		}
		resumedPrior = jnl.Len() > 0
		if *distribute > 0 {
			// The coordinator opens (and locks) the canonical journal itself;
			// this handle only applied the reset-unless-resume policy.
			jnl.Close()
			jnl = nil
		} else {
			defer jnl.Close()
		}
	}
	var cache *wcet.Cache
	if *cacheDir != "" {
		if cache, err = wcet.OpenCache(*cacheDir); err != nil {
			fmt.Fprintln(os.Stderr, "wcet:", err)
			return exitError
		}
	}

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "wcet: pprof:", err)
			}
		}()
	}
	if *traceFile != "" || *metricsFile != "" || *verbose || *statusAddr != "" {
		cfg := wcet.ObserverConfig{}
		if *verbose {
			cfg.Progress = os.Stderr
		}
		ob = wcet.NewObserver(cfg)
	}
	if *journalFile != "" {
		crashPath = *journalFile + ".crash"
	}
	// Export observability even when the analysis errors out: a trace of a
	// degraded or interrupted run is exactly when you want one. In -watch
	// mode the exports accumulate every iteration.
	defer func() {
		if ob == nil {
			return
		}
		if *traceFile != "" {
			if err := writeTo(*traceFile, ob.Trace().WriteChrome); err != nil {
				fmt.Fprintln(os.Stderr, "wcet: trace:", err)
			}
		}
		if *metricsFile != "" {
			if err := writeTo(*metricsFile, ob.Metrics().WriteSnapshotAll); err != nil {
				fmt.Fprintln(os.Stderr, "wcet: metrics:", err)
			}
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	baseOptions := func() wcet.Options {
		return wcet.Options{
			FuncName:   *funcName,
			Bound:      *bound,
			Exhaustive: *exhaustive,
			Workers:    *workers,
			MCTimeout:  *mcTimeout,
			TestGen: wcet.TestGenConfig{
				GA:       wcet.GAConfig{Seed: *seed},
				Optimise: true,
				MC: wcet.MCOptions{
					NoSlice:   *noSlice,
					NoReorder: *noReorder,
					NoPool:    *noPool,
				},
			},
		}
	}

	// The worker launcher is built before the status server so the remote
	// fleet view can be wired into /status.
	var launcher wcet.LedgerLauncher
	var remoteL *wcet.RemoteLauncher
	if *distribute > 0 {
		self, err := os.Executable()
		if err != nil {
			fmt.Fprintln(os.Stderr, "wcet:", err)
			return exitError
		}
		launcher = wcet.ProcessLauncher(self, "-ledger-worker")
		if *agents != "" {
			remoteL = &wcet.RemoteLauncher{
				Agents:   strings.Split(*agents, ","),
				Fallback: launcher,
			}
			launcher = remoteL
		}
	}

	if *statusAddr != "" {
		sc := wcet.StatusConfig{Observer: ob}
		if *journalFile != "" {
			stFn, err := wcet.JournalStatus(string(src), baseOptions(), *journalFile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "wcet:", err)
				return exitError
			}
			sc.Status = stFn
		}
		if *distribute > 0 {
			workDir := filepath.Dir(*journalFile)
			sc.Fleet = func() []wcet.WorkerStatus { return wcet.FleetStatus(workDir) }
		}
		if remoteL != nil {
			sc.Remote = remoteL.Hosts
		}
		srv, err := wcet.ServeStatus(*statusAddr, sc)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wcet: status:", err)
			return exitError
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "wcet: live status on http://%s/status\n", srv.Addr())
		if *statusAddrFile != "" {
			if err := os.WriteFile(*statusAddrFile, []byte(srv.Addr()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "wcet: status:", err)
				return exitError
			}
		}
	}

	if *distribute > 0 {
		spec, err := wcet.NewLedgerSpec(string(src), baseOptions())
		if err != nil {
			fmt.Fprintln(os.Stderr, "wcet:", err)
			return exitError
		}
		res, err := wcet.Distribute(ctx, spec, wcet.LedgerConfig{
			JournalPath:   *journalFile,
			Workers:       *distribute,
			Launcher:      launcher,
			WorkerVerbose: *verbose,
			Obs:           ob,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "wcet:", err)
			if wcet.Interrupted(err) {
				return exitDegraded
			}
			return exitError
		}
		printReport(res.Report, *bound, false, *verbose)
		if len(res.Quarantined) > 0 {
			fmt.Fprintf(os.Stderr, "wcet: %d work unit(s) quarantined after repeatedly killing their workers: %v\n",
				len(res.Quarantined), res.Quarantined)
			// The flight dumps are volatile post-mortems: stderr only, so the
			// stdout report stays byte-identical to an undistributed run.
			for _, d := range res.Report.Degradations {
				if len(d.Flight) == 0 {
					continue
				}
				fmt.Fprintf(os.Stderr, "wcet: last events before the worker on %s died:\n", d.PathKey)
				for _, line := range d.Flight {
					fmt.Fprintf(os.Stderr, "  %s\n", line)
				}
			}
		}
		return distExitCode(res, resumedPrior)
	}

	analyzeOnce := func(text string) int {
		opt := baseOptions()
		opt.Obs = ob
		opt.Journal = jnl
		opt.Cache = cache
		report, err := wcet.AnalyzeCtx(ctx, text, opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wcet:", err)
			if wcet.Interrupted(err) {
				return exitDegraded
			}
			return exitError
		}
		printReport(report, *bound, cache != nil, *verbose)
		if report.Soundness != wcet.BoundExact {
			return exitDegraded
		}
		if report.ResumedUnits > 0 {
			return exitResumed
		}
		return exitOK
	}

	if !*watch {
		return analyzeOnce(string(src))
	}
	for {
		code = analyzeOnce(string(src))
		if ctx.Err() != nil {
			return code
		}
		fmt.Fprintf(os.Stderr, "wcet: watching %s for changes (ctrl-c to stop)\n", srcPath)
		next, ok := waitForChange(ctx, srcPath, src)
		if !ok {
			return code
		}
		src = next
		fmt.Printf("\n--- %s changed, re-analysing ---\n", srcPath)
	}
}

// runAgent serves this process as a remote execution agent until a signal
// arrives: coordinators started with -agents lease worker shards onto it
// over TCP, and each worker is spawned by re-execing this binary with
// -ledger-worker. SIGINT/SIGTERM shut the agent down, killing its worker
// process groups.
func runAgent(addr, addrFile string) int {
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "wcet:", err)
		return exitError
	}
	agent, err := wcet.StartRemoteAgent(addr, wcet.RemoteAgentConfig{
		Exec: []string{self, "-ledger-worker"},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "wcet:", err)
		return exitError
	}
	fmt.Fprintf(os.Stderr, "wcet: remote agent serving on %s\n", agent.Addr())
	if addrFile != "" {
		if err := os.WriteFile(addrFile, []byte(agent.Addr()), 0o644); err != nil {
			agent.Close()
			fmt.Fprintln(os.Stderr, "wcet:", err)
			return exitError
		}
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	if err := agent.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "wcet:", err)
		return exitError
	}
	return exitOK
}

// distExitCode maps a distributed run's outcome to the exit-code contract;
// when several codes apply the most severe wins: 5 over 3 over 4 over 0.
// resumedPrior distinguishes "resumed an earlier invocation's journal" from
// the assembly replay every distributed run performs over its own records.
func distExitCode(res *wcet.LedgerResult, resumedPrior bool) int {
	switch {
	case len(res.Quarantined) > 0:
		return exitQuarantined
	case res.Report.Soundness != wcet.BoundExact:
		return exitDegraded
	case resumedPrior:
		return exitResumed
	}
	return exitOK
}

// printReport renders the analysis report to stdout.
func printReport(report *wcet.Report, bound int64, cached, verbose bool) {
	fmt.Printf("function               : %s\n", report.Fn.Name)
	fmt.Printf("basic blocks           : %d\n", report.G.NumNodes())
	fmt.Printf("path bound b           : %d\n", bound)
	fmt.Printf("instrumentation points : %d (fused: %d)\n", report.Plan.IP, report.Plan.IPFused())
	fmt.Printf("measurements           : %s\n", report.Plan.M)
	fmt.Printf("test data              : %s\n", report.TestGen.Summary())
	if report.ResumedUnits > 0 {
		fmt.Printf("resumed from journal   : %d work units replayed\n", report.ResumedUnits)
	}
	if cached {
		// The cache's headline split: how much of the expensive stage this
		// run avoided. Re-proved counts every model-checker verdict computed
		// fresh — after an edit, exactly the paths whose sliced query the
		// edit touched.
		replayed, reproved := 0, 0
		for _, r := range report.TestGen.Results {
			if r.Verdict == wcet.FoundByHeuristic {
				continue
			}
			if r.Cached {
				replayed++
			} else {
				reproved++
			}
		}
		fmt.Printf("model-checker verdicts : %d served from cache, %d re-proved\n", replayed, reproved)
	}
	fmt.Printf("infeasible paths       : %d\n", report.InfeasiblePaths)
	fmt.Printf("soundness              : %s\n", report.Soundness)
	if report.WCET >= 0 {
		fmt.Printf("WCET bound             : %d cycles\n", report.WCET)
	} else {
		fmt.Printf("WCET bound             : unavailable\n")
	}
	if report.ExhaustiveWCET >= 0 {
		fmt.Printf("exhaustive WCET        : %d cycles\n", report.ExhaustiveWCET)
		fmt.Printf("overestimation         : %.1f%%\n", report.Overestimate()*100)
	}
	if len(report.Degradations) > 0 {
		fmt.Println(report.Summary())
	}
	if verbose {
		fmt.Println("\nper-path verdicts:")
		for _, r := range report.TestGen.Results {
			tag := ""
			if r.Cached {
				tag = "  [cached]"
			}
			fmt.Printf("  %-14s %s%s\n", r.Verdict, r.Path.Key(), tag)
		}
	}
}

// waitForChange polls path until its content differs from prev, returning
// the new content. ok is false when the context ended first. Polling keeps
// the watcher portable; 300ms is far below human edit latency.
func waitForChange(ctx context.Context, path string, prev []byte) (next []byte, ok bool) {
	tick := time.NewTicker(300 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return nil, false
		case <-tick.C:
			// A transiently unreadable file (editor mid-save) is retried on
			// the next tick; an empty save is a real change like any other.
			data, err := os.ReadFile(path)
			if err != nil || bytes.Equal(data, prev) {
				continue
			}
			return data, true
		}
	}
}

// writeTo creates path and streams one export into it.
func writeTo(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
