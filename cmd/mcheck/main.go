// Command mcheck exposes the model-checking back end: it translates a C
// function to the transition-system IR, optionally applies the Section 3.2
// optimisations, and generates test data for (or proves infeasibility of)
// every end-to-end path.
//
//	mcheck [-func name] [-opt] [-model] file.c
//	mcheck -table2          # the paper's optimisation evaluation
//
// All results go to stdout; errors and diagnostics go to stderr, so the
// table and per-path output stay pipeable.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"wcet/internal/c2m"
	"wcet/internal/cc/parser"
	"wcet/internal/cc/sem"
	"wcet/internal/cfg"
	"wcet/internal/experiments"
	"wcet/internal/mc"
	"wcet/internal/opt"
	"wcet/internal/paths"
	"wcet/internal/tsys"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mcheck: ")
	funcName := flag.String("func", "", "function to check (default: first)")
	optimise := flag.Bool("opt", true, "apply the Section 3.2 optimisation pipeline")
	showModel := flag.Bool("model", false, "print the transition system")
	table2 := flag.Bool("table2", false, "run the paper's Table 2 optimisation evaluation")
	flag.Parse()

	if *table2 {
		rows, err := experiments.Table2()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(experiments.RenderTable2(rows))
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mcheck [flags] file.c | mcheck -table2")
		flag.PrintDefaults()
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	file, err := parser.ParseFile(flag.Arg(0), string(data))
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sem.Check(file); err != nil {
		log.Fatal(err)
	}
	name := *funcName
	if name == "" {
		if len(file.Funcs) == 0 {
			log.Fatal("no function in file")
		}
		name = file.Funcs[0].Name
	}
	g, err := cfg.Build(file.Func(name))
	if err != nil {
		log.Fatal(err)
	}
	all, err := paths.Enumerate(cfg.WholeFunction(g), 10000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d end-to-end paths\n", name, len(all))
	for i, p := range all {
		low, err := c2m.LowerPath(g, c2m.Options{NaiveWidths: !*optimise}, p)
		if err != nil {
			log.Fatal(err)
		}
		// Pin non-inputs for deterministic replayable witnesses.
		for _, v := range low.Model.Vars {
			if !v.Input {
				v.Init = tsys.InitConst
				v.InitVal = 0
			}
		}
		if *optimise {
			opt.All(low.Model)
		}
		if *showModel && i == 0 {
			fmt.Println(low.Model)
		}
		res, err := mc.CheckSymbolic(low.Model, mc.Options{})
		if err != nil {
			log.Fatal(err)
		}
		if !res.Reachable {
			fmt.Printf("path %2d: INFEASIBLE   (%d steps, %d BDD nodes)\n",
				i, res.Stats.Steps, res.Stats.PeakNodes)
			continue
		}
		fmt.Printf("path %2d: test data   ", i)
		for id, val := range res.Witness {
			if d := low.DeclOf[id]; d != nil {
				fmt.Printf("%s=%d ", d.Name, val)
			}
		}
		fmt.Printf(" (%d steps, %d BDD nodes, %v)\n",
			res.Stats.Steps, res.Stats.PeakNodes, res.Stats.Duration.Round(0))
	}
}
