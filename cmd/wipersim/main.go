// Command wipersim regenerates the paper's Section 4 case study: the wiper
// controller model, its generated code, and the WCET comparison.
//
//	wipersim [-src] [-dot] [-chart] [-workers n]
//
// All results — generated source, DOT graph, case-study tables — go to
// stdout; errors and diagnostics go to stderr.
package main

import (
	"flag"
	"fmt"
	"log"

	"wcet/internal/experiments"
	"wcet/internal/model"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("wipersim: ")
	showSrc := flag.Bool("src", false, "print the generated C source")
	showDot := flag.Bool("dot", false, "print the CFG in DOT syntax")
	showModel := flag.Bool("chart", false, "print the chart structure")
	workers := flag.Int("workers", 0, "parallel analysis workers (0 = one per CPU, 1 = serial)")
	flag.Parse()

	if *showModel {
		d := model.Wiper()
		fmt.Printf("model %s: %d blocks\n", d.Name, d.NumBlocks())
		fmt.Printf("chart %s: %d states\n", d.Chart.Name, len(d.Chart.States))
		for _, s := range d.Chart.States {
			fmt.Printf("  state %-10s (id %d)\n", s.Name, s.ID)
			for _, t := range d.Chart.TransitionsFrom(s.Name) {
				fmt.Printf("    -> %-10s when %s\n", t.To, t.Guard.C())
			}
		}
		return
	}
	res, err := experiments.CaseStudyWorkers(*workers)
	if err != nil {
		log.Fatal(err)
	}
	if *showSrc {
		fmt.Println(res.Source)
	}
	if *showDot {
		fmt.Println(res.Report.G.Dot())
	}
	fmt.Print(experiments.RenderCaseStudy(res))
}
