package wcet

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation. Each benchmark regenerates its experiment through
// internal/experiments and reports the paper-comparable quantities as
// custom benchmark metrics, so
//
//	go test -bench=. -benchmem
//
// reprints the evaluation. EXPERIMENTS.md records paper-vs-measured.

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"wcet/internal/cfg"
	"wcet/internal/experiments"
	"wcet/internal/ga"
	"wcet/internal/gen"
	"wcet/internal/mc"
	"wcet/internal/model"
	"wcet/internal/partition"
	"wcet/internal/testgen"
)

// cfgCount wraps an integer bound.
func cfgCount(v int64) cfg.Count { return cfg.NewCount(v) }

// BenchmarkTable1 regenerates Table 1: measurement effort (instrumentation
// points, measurements) over path bound b on the Figure 1 program.
func BenchmarkTable1(b *testing.B) {
	var rows []experiments.Table1Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Table1()
		if err != nil {
			b.Fatal(err)
		}
	}
	// Paper: b=1 → (22, 11); b=2..5 → (16, 9); b=6,7 → (2, 6).
	b.ReportMetric(float64(rows[0].IP), "ip(b=1)")
	b.ReportMetric(float64(rows[0].M), "m(b=1)")
	b.ReportMetric(float64(rows[1].IP), "ip(b=2)")
	b.ReportMetric(float64(rows[5].IP), "ip(b=6)")
	b.ReportMetric(float64(rows[5].M), "m(b=6)")
	if !testing.Short() {
		b.Logf("\n%s", experiments.RenderTable1(rows))
	}
}

// sweepOnce runs the Figure 2/3 workload at the paper's scale (~300
// branches, ~850 blocks) and caches nothing: the partitioning sweep itself
// is the measured operation.
func sweepOnce(b *testing.B) *experiments.SweepResult {
	b.Helper()
	res, err := experiments.Sweep(experiments.SweepConfig{Seed: 42, Branches: 300, Points: 400})
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkFigure2 regenerates Figure 2: instrumentation points over the
// path bound (log-spaced) on the synthetic industrial application.
func BenchmarkFigure2(b *testing.B) {
	var res *experiments.SweepResult
	for i := 0; i < b.N; i++ {
		res = sweepOnce(b)
	}
	// Paper: 857 blocks → ip(b=1) = 1714, falling to 2.
	b.ReportMetric(float64(res.Blocks), "blocks")
	b.ReportMetric(float64(res.Points[0].IP), "ip(b=1)")
	b.ReportMetric(float64(res.Points[len(res.Points)-1].IP), "ip(end)")
	if !testing.Short() {
		b.Logf("\n%s", experiments.RenderFigure2(res))
	}
}

// BenchmarkFigure3 regenerates Figure 3: the measurement count explosion as
// instrumentation points shrink toward end-to-end measurement.
func BenchmarkFigure3(b *testing.B) {
	var res *experiments.SweepResult
	for i := 0; i < b.N; i++ {
		res = sweepOnce(b)
	}
	first := res.Points[0]
	last := res.Points[len(res.Points)-1]
	b.ReportMetric(float64(first.IP), "ip(block-level)")
	b.ReportMetric(first.M.Float64(), "m(block-level)")
	b.ReportMetric(float64(last.IP), "ip(end-to-end)")
	b.ReportMetric(last.M.Float64(), "m(end-to-end)")
	if !testing.Short() {
		b.Logf("\n%s", experiments.RenderFigure3(res))
	}
}

// BenchmarkTable2 regenerates Table 2: model-checking time, memory and
// steps for the unoptimised translation, the full optimisation pipeline,
// and each single Section 3.2 optimisation.
func BenchmarkTable2(b *testing.B) {
	var rows []experiments.Table2Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Table2()
		if err != nil {
			b.Fatal(err)
		}
	}
	byName := map[string]experiments.Table2Row{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	unopt := byName["unoptimized"]
	all := byName["all optimisations used"]
	// Paper: 283.4s/229MB/28 steps unoptimised → 2.2s/26MB/13 steps with
	// all optimisations (129× time, 8.6× memory). Shapes, not absolutes.
	b.ReportMetric(float64(unopt.Time.Milliseconds()), "unopt-ms")
	b.ReportMetric(float64(all.Time.Milliseconds()), "allopt-ms")
	b.ReportMetric(float64(unopt.MemoryKB), "unopt-kb")
	b.ReportMetric(float64(all.MemoryKB), "allopt-kb")
	b.ReportMetric(float64(unopt.Steps), "unopt-steps")
	b.ReportMetric(float64(all.Steps), "allopt-steps")
	b.ReportMetric(float64(unopt.PeakNodes), "unopt-nodes")
	b.ReportMetric(float64(all.PeakNodes), "allopt-nodes")
	if !testing.Short() {
		b.Logf("\n%s", experiments.RenderTable2(rows))
	}
}

// BenchmarkCaseStudy regenerates Section 4: the wiper-control WCET,
// exhaustive end-to-end versus the partition-based timing-schema bound.
func BenchmarkCaseStudy(b *testing.B) {
	var res *experiments.CaseStudyResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.CaseStudy()
		if err != nil {
			b.Fatal(err)
		}
	}
	// Paper: exhaustive 250 cycles, bound 274 cycles (+9.6%).
	b.ReportMetric(float64(res.ExhaustiveWCET), "exhaustive-cycles")
	b.ReportMetric(float64(res.Bound), "bound-cycles")
	b.ReportMetric(res.Overestimate()*100, "overestimate-%")
	b.ReportMetric(res.HeuristicShare*100, "heuristic-share-%")
	b.ReportMetric(float64(res.Report.TestGen.PeakMCNodes), "peak-mc-nodes")
	if !testing.Short() {
		b.Logf("\n%s", experiments.RenderCaseStudy(res))
	}
}

// BenchmarkHybridTestGen measures the Section 3 generation pipeline on the
// Table 2 program: GA first, model checker for the residue — the paper
// expects heuristics to produce well over 90% of the test data.
func BenchmarkHybridTestGen(b *testing.B) {
	var share float64
	var gaEvals, mcSteps int
	for i := 0; i < b.N; i++ {
		rep, err := Analyze(experiments.Table2Source, Options{
			FuncName: "control",
			Bound:    6,
			TestGen: testgen.Config{
				GA:       ga.Config{Seed: 7, Pop: 48, MaxGens: 80, Stagnation: 20},
				Optimise: true,
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		share = rep.TestGen.HeuristicShare
		gaEvals = rep.TestGen.TotalGAEvals
		mcSteps = rep.TestGen.TotalMCSteps
	}
	b.ReportMetric(share*100, "heuristic-share-%")
	b.ReportMetric(float64(gaEvals), "ga-evals")
	b.ReportMetric(float64(mcSteps), "mc-steps")
}

// BenchmarkSymbolicLevers is the interleaved A/B for the three symbolic
// speed levers — per-trap slicing, dynamic variable reordering and manager
// pooling — on the heaviest query of the evaluation, the unoptimised
// Table 2 model. Each iteration times the before configuration (all levers
// off, the previous engine) and the after configuration (all levers on,
// the default) back to back, so machine drift hits both sides equally.
// speedup-x is before over after.
func BenchmarkSymbolicLevers(b *testing.B) {
	m, err := experiments.Table2UnoptModel()
	if err != nil {
		b.Fatal(err)
	}
	check := func(o mc.Options) {
		res, err := mc.CheckSymbolic(m, o)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Reachable {
			b.Fatal("table 2 target unreachable")
		}
	}
	check(mc.Options{MaxSteps: 5000}) // warm-up: pays cache misses once
	var before, after time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		check(mc.Options{MaxSteps: 5000, NoSlice: true, NoReorder: true, NoPool: true})
		t1 := time.Now()
		check(mc.Options{MaxSteps: 5000})
		before += t1.Sub(t0)
		after += time.Since(t1)
	}
	b.ReportMetric(float64(before.Milliseconds())/float64(b.N), "before-ms/op")
	b.ReportMetric(float64(after.Milliseconds())/float64(b.N), "after-ms/op")
	b.ReportMetric(before.Seconds()/after.Seconds(), "speedup-x")
}

// BenchmarkObserverOverhead measures the observability layer's cost on the
// hybrid generation pipeline: the same Table 2 workload with no observer
// (the nil-check fast path every un-observed run takes) and with a full
// observer recording spans, metrics and canonical events. The overhead-%
// metric is the enabled run's wall time over the disabled run's, minus one
// — the no-op path must stay under 2%.
func BenchmarkObserverOverhead(b *testing.B) {
	run := func(ob *Observer) {
		_, err := Analyze(experiments.Table2Source, Options{
			FuncName: "control",
			Bound:    6,
			Obs:      ob,
			TestGen: testgen.Config{
				GA:       ga.Config{Seed: 7, Pop: 48, MaxGens: 80, Stagnation: 20},
				Optimise: true,
			},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	disabled := serialBaseline(b, func() { run(nil) })
	b.Run("disabled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run(nil)
		}
	})
	b.Run("enabled", func(b *testing.B) {
		start := time.Now()
		for i := 0; i < b.N; i++ {
			run(NewObserver(ObserverConfig{}))
		}
		perOp := time.Since(start) / time.Duration(b.N)
		b.ReportMetric((perOp.Seconds()/disabled.Seconds()-1)*100, "overhead-%")
	})
}

// BenchmarkJournalOverhead measures the run journal's cost on the Section 4
// wiper pipeline: the identical analysis with journaling off and on, using
// a fresh journal file per iteration so every unit of work is appended and
// none replayed — the worst case for write overhead. The two variants run
// interleaved (plain, journaled, plain, journaled, …) so slow drift on a
// shared host cancels out of the ratio. The overhead-% metric is the
// journaled runs' wall time over the plain runs', minus one; the journal is
// an OS-buffered append-only log, so crash safety must cost under 3%.
func BenchmarkJournalOverhead(b *testing.B) {
	src := model.Wiper().Emit("wiper_control")
	run := func(j *Journal) {
		_, err := Analyze(src, Options{
			FuncName:   "wiper_control",
			Bound:      8,
			Exhaustive: true,
			Journal:    j,
			TestGen: testgen.Config{
				GA:       ga.Config{Seed: 2005, Pop: 48, MaxGens: 80, Stagnation: 20},
				Optimise: true,
			},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	dir := b.TempDir()
	journals := 0
	runJournaled := func() {
		journals++
		j, err := OpenJournal(filepath.Join(dir, fmt.Sprintf("bench-%d.journal", journals)))
		if err != nil {
			b.Fatal(err)
		}
		defer j.Close()
		run(j)
	}
	run(nil) // warm-up: first run pays parser/GA cache misses
	var plain, journaled time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		run(nil)
		t1 := time.Now()
		runJournaled()
		plain += t1.Sub(t0)
		journaled += time.Since(t1)
	}
	b.ReportMetric(float64(plain.Nanoseconds())/float64(b.N), "plain-ns/op")
	b.ReportMetric(float64(journaled.Nanoseconds())/float64(b.N), "journal-ns/op")
	b.ReportMetric((journaled.Seconds()/plain.Seconds()-1)*100, "overhead-%")
}

// BenchmarkDistributed is the interleaved A/B for the distributed work
// ledger on the Section 4 wiper pipeline: a single-process journaled run
// versus a 4-worker distributed run (in-process workers via the default
// launcher, a fresh journal per iteration so every unit is computed, none
// replayed), timed back to back so machine drift hits both legs equally.
// Both legs pay journal appends, so the ratio isolates the coordination
// cost — per-round frontier planning, leasing, merging, scoped replay
// passes — against the fan-out win. At wiper scale (a ~90ms pipeline) the
// coordination dominates and speedup sits well below 1: the ledger buys
// fault tolerance for long runs, not latency for short ones. The metric
// is a regression canary for that overhead, not a >1 claim. Each
// iteration also asserts the two canonical reports are byte-identical,
// the ledger's core guarantee.
func BenchmarkDistributed(b *testing.B) {
	src := model.Wiper().Emit("wiper_control")
	opt := Options{
		FuncName:   "wiper_control",
		Bound:      8,
		Exhaustive: true,
		TestGen: testgen.Config{
			GA:       ga.Config{Seed: 2005, Pop: 48, MaxGens: 80, Stagnation: 20},
			Optimise: true,
		},
	}
	spec, err := NewLedgerSpec(src, opt)
	if err != nil {
		b.Fatal(err)
	}
	canonical := func(rep *Report) []byte {
		var buf bytes.Buffer
		if err := rep.WriteCanonical(&buf); err != nil {
			b.Fatal(err)
		}
		return buf.Bytes()
	}
	dir := b.TempDir()
	iter := 0
	single := func() *Report {
		j, err := OpenJournal(filepath.Join(dir, fmt.Sprintf("single-%d.journal", iter)))
		if err != nil {
			b.Fatal(err)
		}
		defer j.Close()
		o := opt
		o.Journal = j
		rep, err := Analyze(src, o)
		if err != nil {
			b.Fatal(err)
		}
		return rep
	}
	distributed := func() *Report {
		res, err := Distribute(context.Background(), spec, LedgerConfig{
			JournalPath: filepath.Join(dir, fmt.Sprintf("dist-%d.journal", iter)),
			Workers:     4,
			// The default 25ms lease poll is tuned for long multi-process
			// runs; at benchmark scale it would drown the coordination cost
			// in idle sleeps.
			PollInterval: 2 * time.Millisecond,
			LeaseTicks:   2500,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Quarantined) != 0 {
			b.Fatalf("healthy benchmark run quarantined %v", res.Quarantined)
		}
		return res.Report
	}
	single() // warm-up: first run pays parser/GA cache misses
	var singleT, distT time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		iter++
		t0 := time.Now()
		repS := single()
		t1 := time.Now()
		repD := distributed()
		distT += time.Since(t1)
		singleT += t1.Sub(t0)
		if !bytes.Equal(canonical(repS), canonical(repD)) {
			b.Fatal("distributed report diverges from the single-process report")
		}
	}
	b.ReportMetric(float64(singleT.Milliseconds())/float64(b.N), "single-ms/op")
	b.ReportMetric(float64(distT.Milliseconds())/float64(b.N), "dist-ms/op")
	b.ReportMetric(singleT.Seconds()/distT.Seconds(), "speedup")
}

// BenchmarkGeneralPartitioning is the ablation for the paper's announced
// extension: the dominator-region ("general") partitioning against the
// simple AST-based one, at the same path bound, on the paper-scale
// synthetic application. The general variant should need fewer
// instrumentation points at comparable measurement cost.
func BenchmarkGeneralPartitioning(b *testing.B) {
	prog := gen.Generate(gen.Config{Seed: 42, Branches: 300})
	g, err := experiments.BuildGraph(prog.Source, prog.FuncName)
	if err != nil {
		b.Fatal(err)
	}
	bound := cfgCount(16)
	tree := partition.MustBuildTree(g)
	var simple, general *partition.Plan
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		simple = partition.Partition(g, tree, bound)
		general = partition.GeneralPartition(g, bound)
	}
	b.ReportMetric(float64(simple.IP), "simple-ip")
	b.ReportMetric(float64(general.IP), "general-ip")
	b.ReportMetric(simple.M.Float64(), "simple-m")
	b.ReportMetric(general.M.Float64(), "general-m")
	if general.IP > simple.IP {
		b.Fatalf("general partitioning (%d ip) worse than simple (%d ip)", general.IP, simple.IP)
	}
}

// BenchmarkPartitionSweepScaling is an ablation: partitioning cost as the
// application grows (the paper's claim that the simple partitioning copes
// with real-sized code).
func BenchmarkPartitionSweepScaling(b *testing.B) {
	for _, branches := range []int{75, 150, 300} {
		b.Run(sizeName(branches), func(b *testing.B) {
			prog := gen.Generate(gen.Config{Seed: 9, Branches: branches})
			g, err := experiments.BuildGraph(prog.Source, prog.FuncName)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bounds := partition.DefaultBounds(g, 200)
				if _, err := partition.Sweep(g, bounds); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(g.NumNodes()), "blocks")
		})
	}
}

// workerCounts is the fan-out axis of the parallel benchmarks: serial
// baseline, two workers, and one worker per CPU (deduplicated).
func workerCounts() []int {
	counts := []int{1, 2}
	if n := runtime.GOMAXPROCS(0); n > 2 {
		counts = append(counts, n)
	}
	return counts
}

// BenchmarkHybridTestGenParallel measures the parallel analysis engine on
// the hybrid generation pipeline: the same Table 2 workload as
// BenchmarkHybridTestGen, fanned over 1, 2, and GOMAXPROCS workers. The
// speedup metric is wall time at Workers=1 over wall time at Workers=w —
// ≈1.0 on a single-CPU host, approaching w on multi-core runners. The
// reports are identical for every worker count (see the determinism tests),
// so the speedup is free of result drift.
func BenchmarkHybridTestGenParallel(b *testing.B) {
	run := func(workers int) {
		_, err := Analyze(experiments.Table2Source, Options{
			FuncName: "control",
			Bound:    6,
			Workers:  workers,
			TestGen: testgen.Config{
				GA:       ga.Config{Seed: 7, Pop: 48, MaxGens: 80, Stagnation: 20},
				Optimise: true,
			},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	baseline := serialBaseline(b, func() { run(1) })
	for _, w := range workerCounts() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			start := time.Now()
			for i := 0; i < b.N; i++ {
				run(w)
			}
			perOp := time.Since(start) / time.Duration(b.N)
			b.ReportMetric(baseline.Seconds()/perOp.Seconds(), "speedup")
		})
	}
}

// BenchmarkSweepParallel measures the partitioning sweep (the Figure 2/3
// series) over the worker axis on the paper-scale synthetic application.
func BenchmarkSweepParallel(b *testing.B) {
	run := func(workers int) {
		_, err := experiments.Sweep(experiments.SweepConfig{
			Seed: 42, Branches: 300, Points: 400, Workers: workers,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	baseline := serialBaseline(b, func() { run(1) })
	for _, w := range workerCounts() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			start := time.Now()
			for i := 0; i < b.N; i++ {
				run(w)
			}
			perOp := time.Since(start) / time.Duration(b.N)
			b.ReportMetric(baseline.Seconds()/perOp.Seconds(), "speedup")
		})
	}
}

// serialBaseline times one warm serial run of op — the denominator of the
// speedup metric, measured once so every sub-benchmark shares it.
func serialBaseline(b *testing.B, op func()) time.Duration {
	b.Helper()
	op() // warm-up: first run pays parser/GA cache misses
	start := time.Now()
	op()
	return time.Since(start)
}

// BenchmarkVerdictCacheColdWarm measures what the persistent verdict cache
// buys on the edit-analyze loop it exists for: the Section 4 wiper program
// is analysed once to populate a store, one CFG region's straight-line
// code is edited (the POSTWASH self-loop arm's pump command — an output
// assignment, never read back into control flow), and the edited program
// is re-analysed cold (no cache) and warm (against a fresh copy of the
// pre-edit store) back to back, so machine drift hits both legs equally.
//
// An output-assignment edit is the per-trap slice's target case: the slice
// zero-widths trap-irrelevant variables out of every query, so each path's
// key is unchanged and every verdict replays. A guard edit instead misses
// on exactly the paths whose sliced query can see it — the partial-hit
// regime internal/testgen's TestVCacheHitsSurviveEdit pins down.
//
// SkipGA makes the run model-checker dominated — the stage the cache
// memoizes; stage-1 GA keys digest the whole program and miss across any
// edit by design. Every warm leg starts from a byte-copy of the pre-edit
// store so it always measures the first-analysis-after-the-edit case, and
// its report must be byte-identical (WriteCanonical) to the cold leg's.
// speedup-x is cold over warm; the bar is 5x.
func BenchmarkVerdictCacheColdWarm(b *testing.B) {
	srcA := model.Wiper().Emit("wiper_control")
	const arm = "        } else {\n            next_state = 7;\n            motor = 1;\n            pump = 0;\n        }"
	if strings.Count(srcA, arm) != 1 {
		b.Fatalf("POSTWASH self-loop arm not unique in the wiper source")
	}
	srcB := strings.Replace(srcA, arm, strings.Replace(arm, "pump = 0;", "pump = 2;", 1), 1)
	run := func(src string, vc *Cache) *Report {
		rep, err := Analyze(src, Options{
			FuncName: "wiper_control",
			Bound:    8,
			Cache:    vc,
			TestGen:  testgen.Config{SkipGA: true},
		})
		if err != nil {
			b.Fatal(err)
		}
		return rep
	}
	dir := b.TempDir()
	seedDir := filepath.Join(dir, "seed")
	vc, err := OpenCache(seedDir)
	if err != nil {
		b.Fatal(err)
	}
	run(srcA, vc) // populate: the pre-edit analysis, untimed
	canonical := func(rep *Report) []byte {
		var buf bytes.Buffer
		if err := rep.WriteCanonical(&buf); err != nil {
			b.Fatal(err)
		}
		return buf.Bytes()
	}
	run(srcB, nil) // warm-up: pays parser cache misses once
	copies := 0
	warmStore := func() *Cache {
		copies++
		dst := filepath.Join(dir, fmt.Sprintf("warm-%d", copies))
		if err := copyTree(seedDir, dst); err != nil {
			b.Fatal(err)
		}
		c, err := OpenCache(dst)
		if err != nil {
			b.Fatal(err)
		}
		return c
	}
	var cold, warm time.Duration
	var cachedUnits int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wc := warmStore() // untimed: measured legs see only analysis cost
		t0 := time.Now()
		coldRep := run(srcB, nil)
		t1 := time.Now()
		warmRep := run(srcB, wc)
		warm += time.Since(t1)
		cold += t1.Sub(t0)
		if !bytes.Equal(canonical(coldRep), canonical(warmRep)) {
			b.Fatal("warm-cache report diverges from the cold report")
		}
		if warmRep.CachedUnits == 0 {
			b.Fatal("warm run replayed nothing from the verdict store")
		}
		cachedUnits = warmRep.CachedUnits
	}
	b.ReportMetric(float64(cold.Milliseconds())/float64(b.N), "cold-ms/op")
	b.ReportMetric(float64(warm.Milliseconds())/float64(b.N), "warm-ms/op")
	b.ReportMetric(cold.Seconds()/warm.Seconds(), "speedup-x")
	b.ReportMetric(float64(cachedUnits), "cached-units")
}

// copyTree byte-copies a directory tree — fresh verdict-store snapshots for
// the warm benchmark legs.
func copyTree(src, dst string) error {
	return filepath.WalkDir(src, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if d.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o644)
	})
}

func sizeName(branches int) string {
	switch {
	case branches <= 100:
		return "small"
	case branches <= 200:
		return "medium"
	}
	return "paper-scale"
}
