// Structural coverage as a by-product of the hybrid generator (the paper's
// Section 5 remark: "various structural code coverage criteria may be
// satisfied using this approach"): generate branch-coverage test data for a
// diagnostic routine with a dead branch, and watch the model checker prove
// the dead branch infeasible instead of wasting search budget on it.
//
//	go run ./examples/coverage
package main

import (
	"fmt"
	"log"

	"wcet/internal/cc/parser"
	"wcet/internal/cc/sem"
	"wcet/internal/cfg"
	"wcet/internal/ga"
	"wcet/internal/testgen"
)

const src = `
/*@ input */ /*@ range 0 100 */ char temp;
/*@ input */ /*@ range 0 1 */ int ignition;
int heater, alarm;

void climate(void) {
    heater = 0;
    alarm = 0;
    if (ignition == 1) {
        if (temp < 5) {
            heater = 2;
        } else if (temp < 18) {
            heater = 1;
        }
        if (temp > 90) {
            alarm = 1;
            if (temp > 120) { /* unreachable: temp <= 100 */
                alarm = 2;
            }
        }
    }
}
`

func main() {
	file, err := parser.ParseFile("climate.c", src)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sem.Check(file); err != nil {
		log.Fatal(err)
	}
	fn := file.Func("climate")
	g, err := cfg.Build(fn)
	if err != nil {
		log.Fatal(err)
	}
	gen := testgen.New(file, fn, g)

	for _, criterion := range []string{"branch", "statement"} {
		cov, err := gen.Cover(criterion, testgen.Config{
			GA:       ga.Config{Seed: 99},
			Optimise: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(cov)
	}

	fmt.Println("\nbranch-coverage test vectors:")
	cov, err := gen.Cover("branch", testgen.Config{
		GA:       ga.Config{Seed: 99},
		Optimise: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range cov.Report.Results {
		switch r.Verdict {
		case testgen.Infeasible:
			fmt.Printf("  %-28s → proven infeasible by the model checker\n", r.Path.Key())
		case testgen.FoundByHeuristic, testgen.FoundByModelChecker:
			fmt.Printf("  %-28s → temp=%-4d ignition=%d  (%s)\n",
				r.Path.Key(),
				r.Env[file.Globals[0]], r.Env[file.Globals[1]], r.Verdict)
		}
	}
}
