// The Section 2.3 instrumentation/measurement trade-off (Figures 2 and 3):
// generate a synthetic industrial application at the paper's scale, sweep
// the path bound, and print both series.
//
//	go run ./examples/tradeoff [-branches 300] [-seed 42]
package main

import (
	"flag"
	"fmt"
	"log"

	"wcet/internal/experiments"
)

func main() {
	branches := flag.Int("branches", 300, "conditional branches in the synthetic application")
	seed := flag.Int64("seed", 42, "generator seed")
	flag.Parse()

	res, err := experiments.Sweep(experiments.SweepConfig{
		Seed:     *seed,
		Branches: *branches,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== Figure 2: instrumentation points over path bound ===")
	fmt.Print(experiments.RenderFigure2(res))
	fmt.Println()
	fmt.Println("=== Figure 3: measurements over instrumentation points ===")
	fmt.Print(experiments.RenderFigure3(res))
	fmt.Println()
	fmt.Printf("end-to-end measurement would need %s runs — the intractable left end of Figure 3.\n",
		res.TotalPath)
}
