// The paper's Section 4 case study end to end: build the wiper-controller
// model (9-state chart, ~70 blocks), generate TargetLink-style C, run the
// hybrid WCET analysis with each case block as one program segment, and
// compare the timing-schema bound with the exhaustive end-to-end maximum.
//
//	go run ./examples/wiper [-src] [-dot]
package main

import (
	"flag"
	"fmt"
	"log"

	"wcet/internal/experiments"
)

func main() {
	showSrc := flag.Bool("src", false, "print the generated wiper_control C source")
	showDot := flag.Bool("dot", false, "print the CFG in Graphviz DOT syntax")
	flag.Parse()

	res, err := experiments.CaseStudy()
	if err != nil {
		log.Fatal(err)
	}
	if *showSrc {
		fmt.Println(res.Source)
	}
	if *showDot {
		fmt.Println(res.Report.G.Dot())
	}
	fmt.Print(experiments.RenderCaseStudy(res))
	fmt.Println()
	fmt.Println("per-path test data verdicts:")
	fmt.Printf("  %s\n", res.Report.TestGen.Summary())
	fmt.Println("plan:")
	fmt.Printf("  units: %d, instrumentation points: %d, measurements: %s\n",
		len(res.Report.Plan.Units), res.Report.Plan.IP, res.Report.Plan.M)
	fmt.Println("critical path units (timing schema):")
	for _, u := range res.Report.Critical {
		ut := res.Report.Measurement.Times[u]
		kind := "block"
		if ut.Unit.PS != nil {
			kind = ut.Unit.PS.Kind
		}
		fmt.Printf("  unit %-3d %-10s max %4d cycles\n", u, kind, ut.Max)
	}
}
