// Quickstart: run the complete hybrid WCET analysis on a small generated
// control function and print the resulting bound next to the exhaustive
// ground truth.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"wcet"
)

const src = `
/*@ input */ /*@ range 0 3 */ int mode;
/*@ input */ /*@ range 0 50 */ char load;
int duty;

void governor(void) {
    duty = 0;
    switch (mode) {
    case 0:
        duty = 0;
        break;
    case 1:
        if (load > 30) { duty = 80; } else { duty = 40; }
        break;
    case 2:
        duty = 100;
        if (load > 45) { duty = 90; }
        break;
    default:
        duty = 10;
        break;
    }
    if (duty > 95) { duty = 95; }
}
`

func main() {
	report, err := wcet.Analyze(src, wcet.Options{
		FuncName:   "governor",
		Bound:      4, // program segments with at most 4 paths are measured whole
		Exhaustive: true,
		TestGen: wcet.TestGenConfig{
			GA:       wcet.GAConfig{Seed: 1},
			Optimise: true,
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("hybrid measurement-based WCET analysis — quickstart")
	fmt.Printf("function              : %s\n", report.Fn.Name)
	fmt.Printf("basic blocks          : %d\n", report.G.NumNodes())
	fmt.Printf("instrumentation points: %d (fused: %d)\n", report.Plan.IP, report.Plan.IPFused())
	fmt.Printf("measurements needed   : %s\n", report.Plan.M)
	fmt.Printf("test data             : %s\n", report.TestGen.Summary())
	fmt.Printf("WCET bound            : %d cycles\n", report.WCET)
	fmt.Printf("exhaustive WCET       : %d cycles\n", report.ExhaustiveWCET)
	fmt.Printf("overestimation        : %.1f%%\n", report.Overestimate()*100)
}
