// The Section 3.3 optimisation evaluation (Table 2): translate the 105-line
// evaluation program naively (every variable 16-bit, one statement per
// transition), then re-check the same trap under each state-space
// optimisation and print the cost table.
//
//	go run ./examples/optimizations
package main

import (
	"fmt"
	"log"

	"wcet/internal/experiments"
)

func main() {
	rows, err := experiments.Table2()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Impact of the Section 3.2 optimisations on model checking")
	fmt.Println("(paper, 2004 hardware + SAL: 283.4s/229MB/28 steps unoptimised,")
	fmt.Println(" 2.2s/26MB/13 steps with all optimisations)")
	fmt.Println()
	fmt.Print(experiments.RenderTable2(rows))

	var unopt, all experiments.Table2Row
	for _, r := range rows {
		switch r.Name {
		case "unoptimized":
			unopt = r
		case "all optimisations used":
			all = r
		}
	}
	if all.Time > 0 {
		fmt.Printf("\nspeed-up: %.0f×, memory: %.1f×, steps: %.1f×\n",
			float64(unopt.Time)/float64(all.Time),
			float64(unopt.MemoryKB)/float64(all.MemoryKB),
			float64(unopt.Steps)/float64(all.Steps))
	}
}
