# Build and verification entry points. `make check` is the full gate:
# build, vet, the test suite, and the race-detector run that guards the
# parallel analysis engine.

GO ?= go

.PHONY: build test vet race check bench bench-parallel bench-bdd clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

check: build vet test race

bench:
	$(GO) test -bench . -benchtime 1x .

# bench-parallel runs the worker-fan-out benchmarks and appends the parsed
# results (including the speedup metric) to BENCH_1.json via cmd/benchlog.
bench-parallel:
	$(GO) test -run '^$$' -bench Parallel -benchtime 3x . | $(GO) run ./cmd/benchlog -out BENCH_1.json

# bench-bdd runs the BDD-kernel microbenchmarks plus the end-to-end hybrid
# test-generation benchmark and appends the parsed results to BENCH_2.json;
# the first entry in that file is the pre-rewrite map-based baseline.
bench-bdd:
	( $(GO) test -run '^$$' -bench BDD -benchtime 10x ./internal/bdd ; \
	  $(GO) test -run '^$$' -bench 'HybridTestGenParallel|Table2|CaseStudy' -benchtime 3x . ) \
	| $(GO) run ./cmd/benchlog -out BENCH_2.json

clean:
	$(GO) clean ./...
