# Build and verification entry points. `make check` is the full gate:
# build, vet, the test suite, and the race-detector run that guards the
# parallel analysis engine.

GO ?= go

.PHONY: build test vet race check bench bench-parallel clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

check: build vet test race

bench:
	$(GO) test -bench . -benchtime 1x .

# bench-parallel runs the worker-fan-out benchmarks and appends the parsed
# results (including the speedup metric) to BENCH_1.json via cmd/benchlog.
bench-parallel:
	$(GO) test -run '^$$' -bench Parallel -benchtime 3x . | $(GO) run ./cmd/benchlog -out BENCH_1.json

clean:
	$(GO) clean ./...
