# Build and verification entry points. `make check` is the full gate:
# build, vet, the test suite, and the race-detector run that guards the
# parallel analysis engine. `make check-faults` additionally drives the
# fault-injection and resilience suites (cancellation, injected faults,
# worker panics, degraded reports) under the race detector.

GO ?= go

.PHONY: help build test vet race check check-faults check-obs check-chaos check-symbolic check-cache check-dist check-live check-remote lint-prints bench bench-parallel bench-bdd bench-obs bench-journal bench-symbolic bench-cache bench-dist bench-live bench-remote clean

help:
	@echo "make build         - compile all packages"
	@echo "make test          - run the test suite"
	@echo "make vet           - go vet"
	@echo "make race          - test suite under the race detector"
	@echo "make check         - build + vet + test + race + chaos (the full gate)"
	@echo "make check-faults  - fault-injection & resilience suites under -race"
	@echo "make check-obs     - observability determinism suites under -race"
	@echo "make check-chaos   - durability suites & chaos soak (kill/resume) under -race"
	@echo "make check-symbolic- symbolic-lever property & differential suites under -race"
	@echo "make check-cache   - verdict-cache & fingerprint-coverage suites under -race"
	@echo "make check-dist    - distributed ledger & multi-process chaos suites under -race"
	@echo "make check-live    - live telemetry (bus, HTTP surface, fleet, flight) under -race"
	@echo "make check-remote  - machine-spanning launcher & network-chaos suites under -race"
	@echo "make lint-prints   - fail on stray stdout writes inside internal/"
	@echo "make bench         - regenerate every table and figure"
	@echo "make bench-parallel- worker fan-out benchmarks -> BENCH_1.json"
	@echo "make bench-bdd     - BDD kernel benchmarks -> BENCH_2.json"
	@echo "make bench-obs     - observer overhead benchmarks -> BENCH_3.json"
	@echo "make bench-journal - journal overhead benchmarks -> BENCH_4.json"
	@echo "make bench-symbolic- symbolic lever A/B benchmarks -> BENCH_5.json"
	@echo "make bench-cache   - cold vs warm verdict-cache A/B -> BENCH_6.json"
	@echo "make bench-dist    - single-process vs distributed A/B -> BENCH_7.json"
	@echo "make bench-live    - live telemetry surface overhead A/B -> BENCH_8.json"
	@echo "make bench-remote  - local procs vs loopback agents A/B -> BENCH_9.json"

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

check: build vet test race check-chaos check-symbolic check-cache check-dist check-live check-remote

# check-faults re-runs the resilience surface with the race detector on:
# the fail/faults/par unit suites plus every stage's injected-fault,
# cancellation and panic-isolation tests, including the wiper end-to-end
# degradation tests.
check-faults:
	$(GO) test -race \
		./internal/fail ./internal/faults ./internal/par \
		-run . -count 1
	$(GO) test -race -count 1 \
		-run 'Resilien|Cancel|Panic|Fault|Budget|Degrad|Unknown|Leak|Unavailable|Wiper' \
		./internal/mc ./internal/partition ./internal/testgen \
		./internal/measure ./internal/core ./internal/experiments

# check-obs drives the observability layer's own suite plus the canonical-
# export determinism tests (clean and fault-injected wiper pipelines) under
# the race detector — the byte-identical-across-workers guarantee is
# exactly the kind of property a data race would silently break.
check-obs:
	$(GO) test -race -count 1 ./internal/obs
	$(GO) test -race -count 1 -run 'Observability|Deterministic' \
		./internal/experiments

# check-chaos drives the durability surface with the race detector on: the
# journal/retry unit suites, the chaos soak harness (seed-driven kill+resume
# campaigns with injected faults and torn writes), every stage's journal-
# replay and retry tests, and the wiper kill/resume byte-identity
# acceptance tests.
check-chaos:
	$(GO) test -race -count 1 ./internal/journal ./internal/retry ./internal/chaos
	$(GO) test -race -count 1 \
		-run 'Journal|Resume|Retr|Failover|Soak|Kill|Stall|Heal' \
		./internal/testgen ./internal/measure ./internal/partition \
		./internal/core ./internal/experiments

# check-symbolic drives the symbolic-speed levers' correctness surface
# under the race detector: the BDD kernel's property suites (including
# reordering), the mc differential suites (sliced vs unsliced, reordered vs
# static, pooled vs fresh, order handoff), the slicing pass's unit tests,
# and the end-to-end lever determinism pins on the wiper study.
check-symbolic:
	$(GO) test -race -count 1 ./internal/bdd ./internal/opt
	$(GO) test -race -count 1 \
		-run 'Sliced|Slice|Reorder|Pooled|OrderBook|Lever' \
		./internal/mc ./internal/experiments

# check-cache drives the incremental re-analysis surface under the race
# detector: the vcache store's own suite (concurrent put/get included),
# the generator's cache semantics tests (warm-run identity, cross-edit
# hit survival, journal-beats-cache precedence, budget-keyed degraded
# verdicts, OrderBook bypass, poisoned-env fail-closed), the journal
# fingerprint regression and reflection field-coverage tests that pin
# every option field into a fingerprint or an explicit exemption, and
# the wiper warm-cache byte-identity acceptance test.
check-cache:
	$(GO) test -race -count 1 ./internal/vcache
	$(GO) test -race -count 1 \
		-run 'VCache|Fingerprint|LeverFlip|WarmCache' \
		./internal/testgen ./internal/journal ./internal/tsys \
		./internal/core ./internal/experiments

# check-dist drives the distributed work ledger under the race detector:
# the ledger package's own suite (spec round-trip and option-surface
# coverage, merge shuffle determinism, worker-death reclamation,
# coordinator restart, repeated-death quarantine), the multi-process chaos
# acceptance (real SIGKILLed worker processes, a SIGKILLed and restarted
# coordinator, byte-identity against the single-process reference), and
# the wcet CLI's distributed smoke tests including the exit-code contract.
check-dist:
	$(GO) test -race -count 1 ./internal/ledger ./cmd/wcet
	$(GO) test -race -count 1 -run 'Dist' ./internal/chaos

# check-live drives the live-telemetry surface under the race detector:
# the event bus / flight recorder / Prometheus / telemetry-sidecar suites
# and the HTTP status server's own tests, the journal's concurrent-reader
# snapshot test, the ledger's fleet-aggregation and heartbeat tests, the
# backpressure byte-identity acceptance (stalled subscribers and unread
# SSE consumers shed events, never bytes), and the CLI's -status
# acceptance drive plus the exports-on-every-exit-code contract.
check-live:
	$(GO) test -race -count 1 ./internal/obs ./internal/obs/serve
	$(GO) test -race -count 1 \
		-run 'ReadFileConcurrent|MemoryJournal|ReadFleet|Heartbeat|Quarantine' \
		./internal/journal ./internal/ledger
	$(GO) test -race -count 1 \
		-run 'Backpressure|LiveServer|LiveStatus|ExportsWritten' \
		./internal/experiments ./cmd/wcet

# check-remote drives the machine-spanning surface under the race
# detector: the remote package's own suite (byte-prefix streaming, fault-
# transport determinism, reconnect across torn streams, unreachable-host
# fallback onto local workers), the network-chaos acceptance (deterministic
# tears/partitions/duplications on the wire, an agent SIGKILLed mid-run, a
# SIGKILLed-and-restarted coordinator harvesting partially-streamed
# journals, byte-identity against the single-process reference), the
# process-group kill contract, the remote-harvester sidecar robustness
# tests, and the CLI's -agents / -ledger-agent / SIGTERM smoke tests.
check-remote:
	$(GO) test -race -count 1 ./internal/remote
	$(GO) test -race -count 1 -run 'RemoteNetChaos' ./internal/chaos
	$(GO) test -race -count 1 \
		-run 'ProcLauncherKill|RemoteHarvester|FreshSidecar' ./internal/ledger
	$(GO) test -race -count 1 \
		-run 'RemoteAgents|Sigterm' ./cmd/wcet

# lint-prints guards the stdout/stderr contract: library code under
# internal/ must never print — results belong to the cmd tools' stdout,
# human diagnostics to the observer's progress stream. internal/obs is the
# one package allowed to hold an io.Writer, and tests are exempt.
lint-prints:
	@bad=$$(grep -rn 'fmt\.Print\|os\.Stdout' internal/ \
		--include '*.go' \
		--exclude '*_test.go' \
		--exclude-dir obs || true); \
	if [ -n "$$bad" ]; then \
		echo "stray print/stdout in internal/ (route through cmd/ or obs):"; \
		echo "$$bad"; \
		exit 1; \
	fi

bench:
	$(GO) test -bench . -benchtime 1x .

# bench-parallel runs the worker-fan-out benchmarks and appends the parsed
# results (including the speedup metric) to BENCH_1.json via cmd/benchlog.
bench-parallel:
	$(GO) test -run '^$$' -bench Parallel -benchtime 3x . | $(GO) run ./cmd/benchlog -out BENCH_1.json

# bench-bdd runs the BDD-kernel microbenchmarks plus the end-to-end hybrid
# test-generation benchmark and appends the parsed results to BENCH_2.json;
# the first entry in that file is the pre-rewrite map-based baseline.
bench-bdd:
	( $(GO) test -run '^$$' -bench BDD -benchtime 10x ./internal/bdd ; \
	  $(GO) test -run '^$$' -bench 'HybridTestGenParallel|Table2|CaseStudy' -benchtime 3x . ) \
	| $(GO) run ./cmd/benchlog -out BENCH_2.json

# bench-obs measures the observability layer's cost: BenchmarkTable2 and
# the hybrid test-gen benchmark (observer disabled — the no-op overhead vs
# the seed entry already in BENCH_3.json) plus BenchmarkObserverOverhead
# (disabled vs enabled side by side).
bench-obs:
	$(GO) test -run '^$$' -bench 'Table2|HybridTestGenParallel|ObserverOverhead' -benchtime 3x . \
	| $(GO) run ./cmd/benchlog -out BENCH_3.json

# bench-journal measures what crash safety costs: the wiper case-study
# pipeline with journaling off and on (fresh journal per iteration — every
# unit appended, none replayed). The overhead-% metric must stay under 3%;
# 20 iterations per variant because the ~90ms pipeline runs drown a
# sub-millisecond journal cost in scheduler noise at smaller counts.
bench-journal:
	$(GO) test -run '^$$' -bench JournalOverhead -benchtime 20x . \
	| $(GO) run ./cmd/benchlog -out BENCH_4.json

# bench-symbolic measures the raw-symbolic-speed work: the interleaved
# lever A/B on the unoptimised Table 2 model (before = all levers off,
# after = the default engine, timed back to back each iteration) plus the
# end-to-end Table 2 and hybrid test-generation benchmarks, appended to
# BENCH_5.json. The file's first entries are the pre-lever baselines.
bench-symbolic:
	( $(GO) test -run '^$$' -bench SymbolicLevers -benchtime 3x . ; \
	  $(GO) test -run '^$$' -bench 'Table2$$|HybridTestGen$$' -benchtime 3x . ) \
	| $(GO) run ./cmd/benchlog -out BENCH_5.json

# bench-cache measures what the persistent verdict cache buys: an
# interleaved cold-vs-warm A/B on the wiper chart after a one-line edit
# (cold = empty store, warm = store populated by a pre-edit run, timed
# back to back each iteration from fresh copies of the same seed store),
# appended to BENCH_6.json. The speedup-x metric must stay >= 5; the
# benchmark itself asserts the cached and clean canonical reports are
# byte-identical.
bench-cache:
	$(GO) test -run '^$$' -bench VerdictCacheColdWarm -benchtime 3x . \
	| $(GO) run ./cmd/benchlog -out BENCH_6.json

# bench-dist measures what distribution costs at case-study scale: the
# interleaved single-process vs 4-worker A/B on the wiper pipeline (fresh
# journals per iteration, byte-identity asserted every iteration),
# appended to BENCH_7.json. At this workload size the coordination
# overhead dominates, so the speedup metric is a regression canary for
# that overhead rather than a >1 claim.
bench-dist:
	$(GO) test -run '^$$' -bench Distributed -benchtime 3x . \
	| $(GO) run ./cmd/benchlog -out BENCH_7.json

# bench-live measures what watching a run costs: the wiper pipeline with a
# bare observer vs one carrying the full -status surface (running HTTP
# server plus an SSE subscriber that never reads — the worst-case
# consumer), timed back to back each iteration with byte-identity
# asserted. The overhead-% metric must stay under 2%: publishing an event
# is a mutex acquisition and a ring write, never a blocking send.
bench-live:
	$(GO) test -run '^$$' -bench LiveTelemetry -benchtime 20x . \
	| $(GO) run ./cmd/benchlog -out BENCH_8.json

# bench-remote measures what machine-spanning costs in the best case
# (loopback TCP, no faults): the wiper pipeline over 4 local worker
# processes vs the same 4 workers leased onto two loopback agents with
# journals streamed back frame by frame, interleaved with byte-identity
# asserted every iteration. The overhead-% metric prices the TCP hop and
# the journal/telemetry forwarding alone — same workers, same shards.
bench-remote:
	$(GO) test -run '^$$' -bench RemoteAgents -benchtime 3x . \
	| $(GO) run ./cmd/benchlog -out BENCH_9.json

clean:
	$(GO) clean ./...
